package nffg

import (
	"fmt"
	"strings"
)

// PortRef addresses a steerable port inside a BiS-BiS: either one of the
// node's own infrastructure ports (NF == "") or a port of an NF mapped onto
// the node. It is a comparable value usable as a map key, in the spirit of
// gopacket's Endpoint.
type PortRef struct {
	NF   ID     // empty for an infra port
	Port string // port ID on the infra node or on the NF
}

// InfraPort returns a PortRef naming an infrastructure port.
func InfraPort(port string) PortRef { return PortRef{Port: port} }

// NFPort returns a PortRef naming a port on a mapped NF.
func NFPort(nf ID, port string) PortRef { return PortRef{NF: nf, Port: port} }

// IsNF reports whether the reference addresses an NF port.
func (p PortRef) IsNF() bool { return p.NF != "" }

// String renders "3" for infra ports and "nf:fw1:1" for NF ports.
func (p PortRef) String() string {
	if p.NF == "" {
		return p.Port
	}
	return fmt.Sprintf("nf:%s:%s", p.NF, p.Port)
}

// ParsePortRef parses the String form back into a PortRef.
func ParsePortRef(s string) (PortRef, error) {
	if rest, ok := strings.CutPrefix(s, "nf:"); ok {
		nf, port, ok := strings.Cut(rest, ":")
		if !ok || nf == "" || port == "" {
			return PortRef{}, fmt.Errorf("nffg: malformed NF port ref %q", s)
		}
		return PortRef{NF: ID(nf), Port: port}, nil
	}
	if s == "" {
		return PortRef{}, fmt.Errorf("nffg: empty port ref")
	}
	return PortRef{Port: s}, nil
}

// Match selects traffic inside a BiS-BiS flowtable. The zero Tag matches
// untagged traffic only when MatchUntagged is set; an empty Match with
// MatchUntagged false matches any tag on the in-port.
type Match struct {
	InPort PortRef `json:"in_port" xml:"in_port"`
	// Tag matches the service tag pushed by an upstream BiS-BiS (the
	// VLAN-like label that isolates chains from each other).
	Tag string `json:"tag,omitempty" xml:"tag,omitempty"`
	// MatchUntagged restricts the rule to traffic with no service tag.
	MatchUntagged bool `json:"untagged,omitempty" xml:"untagged,omitempty"`
	// DstSAP classifies by the traffic's destination service access point.
	// It is set on chain-ingress rules so several chains may share an
	// ingress SAP as long as their destinations differ.
	DstSAP ID `json:"dst_sap,omitempty" xml:"dst_sap,omitempty"`
}

// Action forwards matched traffic. Tag operations execute before output.
type Action struct {
	Output PortRef `json:"output" xml:"output"`
	// PushTag sets the service tag (replacing any present).
	PushTag string `json:"push_tag,omitempty" xml:"push_tag,omitempty"`
	// PopTag removes the service tag before output.
	PopTag bool `json:"pop_tag,omitempty" xml:"pop_tag,omitempty"`
}

// Flowrule is one entry of a BiS-BiS flowtable. Bandwidth is the admitted
// rate for the rule (used in resource accounting), Delay the contribution
// assumed for the internal hop. HopID ties the rule back to the service-graph
// hop it realizes so rules can be garbage-collected when a chain is removed.
type Flowrule struct {
	ID        string  `json:"id" xml:"id"`
	Priority  int     `json:"priority,omitempty" xml:"priority,omitempty"`
	Match     Match   `json:"match" xml:"match"`
	Action    Action  `json:"action" xml:"action"`
	Bandwidth float64 `json:"bandwidth,omitempty" xml:"bandwidth,omitempty"`
	Delay     float64 `json:"delay,omitempty" xml:"delay,omitempty"`
	HopID     string  `json:"hop,omitempty" xml:"hop,omitempty"`
}

// String renders the rule in the ESCAPE-style compact text form, e.g.
// "in_port=1;TAG=chain1 -> output=nf:fw:1;UNTAG".
func (f *Flowrule) String() string {
	var m []string
	m = append(m, "in_port="+f.Match.InPort.String())
	if f.Match.Tag != "" {
		m = append(m, "TAG="+f.Match.Tag)
	} else if f.Match.MatchUntagged {
		m = append(m, "UNTAGGED")
	}
	if f.Match.DstSAP != "" {
		m = append(m, "DST="+string(f.Match.DstSAP))
	}
	var a []string
	if f.Action.PopTag {
		a = append(a, "UNTAG")
	}
	if f.Action.PushTag != "" {
		a = append(a, "TAG="+f.Action.PushTag)
	}
	a = append(a, "output="+f.Action.Output.String())
	return strings.Join(m, ";") + " -> " + strings.Join(a, ";")
}

// ParseFlowrule parses the String form. ID/priority/bandwidth metadata are
// not part of the text form and are left zero.
func ParseFlowrule(s string) (*Flowrule, error) {
	lhs, rhs, ok := strings.Cut(s, "->")
	if !ok {
		return nil, fmt.Errorf("nffg: flowrule %q missing \"->\"", s)
	}
	f := &Flowrule{}
	for _, tok := range splitTokens(lhs) {
		switch {
		case strings.HasPrefix(tok, "in_port="):
			p, err := ParsePortRef(strings.TrimPrefix(tok, "in_port="))
			if err != nil {
				return nil, err
			}
			f.Match.InPort = p
		case strings.HasPrefix(tok, "TAG="):
			f.Match.Tag = strings.TrimPrefix(tok, "TAG=")
		case strings.HasPrefix(tok, "DST="):
			f.Match.DstSAP = ID(strings.TrimPrefix(tok, "DST="))
		case tok == "UNTAGGED":
			f.Match.MatchUntagged = true
		default:
			return nil, fmt.Errorf("nffg: unknown match token %q", tok)
		}
	}
	for _, tok := range splitTokens(rhs) {
		switch {
		case strings.HasPrefix(tok, "output="):
			p, err := ParsePortRef(strings.TrimPrefix(tok, "output="))
			if err != nil {
				return nil, err
			}
			f.Action.Output = p
		case strings.HasPrefix(tok, "TAG="):
			f.Action.PushTag = strings.TrimPrefix(tok, "TAG=")
		case tok == "UNTAG":
			f.Action.PopTag = true
		default:
			return nil, fmt.Errorf("nffg: unknown action token %q", tok)
		}
	}
	if f.Match.InPort == (PortRef{}) {
		return nil, fmt.Errorf("nffg: flowrule %q has no in_port", s)
	}
	if f.Action.Output == (PortRef{}) {
		return nil, fmt.Errorf("nffg: flowrule %q has no output", s)
	}
	return f, nil
}

func splitTokens(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ";") {
		t = strings.TrimSpace(t)
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Key returns a comparable identity for rule dedup/diffing: the match side
// fully determines which traffic the rule owns within a table.
func (f *Flowrule) Key() Match { return f.Match }

// Equal reports whether two rules are semantically identical (ignoring ID).
func (f *Flowrule) Equal(o *Flowrule) bool {
	return f.Priority == o.Priority && f.Match == o.Match && f.Action == o.Action &&
		f.Bandwidth == o.Bandwidth && f.Delay == o.Delay && f.HopID == o.HopID
}

// AddFlowrule appends a rule to an infra's flowtable, validating that the
// referenced ports exist (infra ports on the node, NF ports on NFs mapped to
// the node).
func (g *NFFG) AddFlowrule(infra ID, f *Flowrule) error {
	g.mustMutable("AddFlowrule")
	i, ok := g.Infras[infra]
	if !ok {
		return fmt.Errorf("%w: infra %s", ErrNotFound, infra)
	}
	for _, existing := range i.Flowrules {
		if existing.ID == f.ID && f.ID != "" {
			return fmt.Errorf("%w: flowrule %s on %s", ErrDuplicateID, f.ID, infra)
		}
		// A BiS-BiS flowtable is keyed by match: two rules owning the same
		// traffic would be ambiguous.
		if existing.Match == f.Match {
			return fmt.Errorf("%w: flowrule %s duplicates match of %s on %s", ErrDuplicateID, f.ID, existing.ID, infra)
		}
	}
	if err := g.checkRulePort(i, f.Match.InPort); err != nil {
		return fmt.Errorf("flowrule %s match: %w", f.ID, err)
	}
	if err := g.checkRulePort(i, f.Action.Output); err != nil {
		return fmt.Errorf("flowrule %s action: %w", f.ID, err)
	}
	i.Flowrules = append(i.Flowrules, f)
	return nil
}

// RemoveFlowrulesByHop removes from every infra the rules installed for the
// given service hop, returning how many were dropped.
func (g *NFFG) RemoveFlowrulesByHop(hopID string) int {
	n := 0
	for _, i := range g.Infras {
		kept := i.Flowrules[:0]
		for _, f := range i.Flowrules {
			if f.HopID == hopID {
				n++
				continue
			}
			kept = append(kept, f)
		}
		i.Flowrules = kept
	}
	return n
}

func (g *NFFG) checkRulePort(i *Infra, p PortRef) error {
	if !p.IsNF() {
		if i.Port(p.Port) == nil {
			return fmt.Errorf("%w: infra port %s on %s", ErrNotFound, p.Port, i.ID)
		}
		return nil
	}
	nf, ok := g.NFs[p.NF]
	if !ok {
		return fmt.Errorf("%w: NF %s", ErrNotFound, p.NF)
	}
	if nf.Host != i.ID {
		return fmt.Errorf("%w: NF %s is hosted on %q, not %s", ErrInvalid, p.NF, nf.Host, i.ID)
	}
	if nf.Port(p.Port) == nil {
		return fmt.Errorf("%w: port %s on NF %s", ErrNotFound, p.Port, p.NF)
	}
	return nil
}

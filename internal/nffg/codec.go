package nffg

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// wire is the serialized shape shared by the JSON and XML codecs: maps become
// sorted lists so output is deterministic and diff-friendly — the property
// the paper gets from its Yang model.
type wire struct {
	XMLName xml.Name       `json:"-" xml:"virtualizer"`
	ID      string         `json:"id" xml:"id,attr"`
	Name    string         `json:"name,omitempty" xml:"name,attr,omitempty"`
	Version int            `json:"version" xml:"version,attr"`
	Infras  []*Infra       `json:"infras,omitempty" xml:"nodes>infra,omitempty"`
	NFs     []*NF          `json:"nfs,omitempty" xml:"nodes>nf,omitempty"`
	SAPs    []*SAP         `json:"saps,omitempty" xml:"nodes>sap,omitempty"`
	Links   []*Link        `json:"links,omitempty" xml:"links>link,omitempty"`
	Hops    []*SGHop       `json:"sg_hops,omitempty" xml:"sg_hops>hop,omitempty"`
	Reqs    []*Requirement `json:"requirements,omitempty" xml:"requirements>requirement,omitempty"`
}

func (g *NFFG) toWire() *wire {
	w := &wire{ID: g.ID, Name: g.Name, Version: g.Version, Links: g.Links, Hops: g.Hops, Reqs: g.Reqs}
	for _, id := range g.InfraIDs() {
		w.Infras = append(w.Infras, g.Infras[id])
	}
	for _, id := range g.NFIDs() {
		w.NFs = append(w.NFs, g.NFs[id])
	}
	for _, id := range g.SAPIDs() {
		w.SAPs = append(w.SAPs, g.SAPs[id])
	}
	return w
}

func fromWire(w *wire) (*NFFG, error) {
	g := New(w.ID)
	g.Name = w.Name
	g.Version = w.Version
	for _, i := range w.Infras {
		if err := g.AddInfra(i); err != nil {
			return nil, err
		}
	}
	for _, n := range w.NFs {
		if err := g.AddNF(n); err != nil {
			return nil, err
		}
	}
	for _, s := range w.SAPs {
		if err := g.AddSAP(s); err != nil {
			return nil, err
		}
	}
	g.Links = w.Links
	g.Hops = w.Hops
	g.Reqs = w.Reqs
	return g, nil
}

// MarshalJSON encodes the graph deterministically.
func (g *NFFG) MarshalJSON() ([]byte, error) { return json.Marshal(g.toWire()) }

// UnmarshalJSON decodes a graph produced by MarshalJSON.
func (g *NFFG) UnmarshalJSON(b []byte) error {
	var w wire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	ng, err := fromWire(&w)
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}

// EncodeJSON writes the graph as indented JSON.
func (g *NFFG) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// DecodeJSON reads a graph from JSON.
func DecodeJSON(r io.Reader) (*NFFG, error) {
	g := New("")
	if err := json.NewDecoder(r).Decode(g); err != nil {
		return nil, fmt.Errorf("nffg: decode json: %w", err)
	}
	return g, nil
}

// EncodeXML writes the graph in the virtualizer XML rendering (the shape a
// Yang-modelled NETCONF datastore would expose).
func (g *NFFG) EncodeXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(g.toWire()); err != nil {
		return err
	}
	return enc.Flush()
}

// MarshalXML makes NFFG usable directly as an xml.Marshaler field.
func (g *NFFG) MarshalXML(e *xml.Encoder, _ xml.StartElement) error {
	return e.Encode(g.toWire())
}

// DecodeXML reads a graph from the virtualizer XML rendering.
func DecodeXML(r io.Reader) (*NFFG, error) {
	var w wire
	if err := xml.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("nffg: decode xml: %w", err)
	}
	return fromWire(&w)
}

// XMLString returns the XML rendering, for logging and NETCONF payloads.
func (g *NFFG) XMLString() (string, error) {
	var sb strings.Builder
	if err := g.EncodeXML(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Summary renders a compact single-line description, e.g.
// "view[dov v3]: 4 BiSBiS, 3 NF (2 mapped), 2 SAP, 10 links, 4 hops".
func (g *NFFG) Summary() string {
	mapped := 0
	for _, nf := range g.NFs {
		if nf.Host != "" {
			mapped++
		}
	}
	return fmt.Sprintf("%s v%d: %d BiSBiS, %d NF (%d mapped), %d SAP, %d links, %d hops, %d reqs",
		g.ID, g.Version, len(g.Infras), len(g.NFs), mapped, len(g.SAPs), len(g.Links), len(g.Hops), len(g.Reqs))
}

// Render draws an ASCII description of the graph: every BiS-BiS with its
// resources, mapped NFs and flowtable, then links and hops. Deterministic
// ordering makes it diffable in tests and demo transcripts.
func (g *NFFG) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFFG %s (version %d)\n", g.ID, g.Version)
	for _, id := range g.InfraIDs() {
		i := g.Infras[id]
		avail, _ := g.AvailableResources(id)
		fmt.Fprintf(&b, "  [BiSBiS %s] domain=%s type=%s cpu=%.0f/%.0f mem=%.0f/%.0f\n",
			id, i.Domain, i.Type, avail.CPU, i.Capacity.CPU, avail.Mem, i.Capacity.Mem)
		if len(i.Supported) > 0 {
			fmt.Fprintf(&b, "    supports: %s\n", strings.Join(sortedStrings(i.Supported), ","))
		}
		for _, nf := range g.NFsOn(id) {
			fmt.Fprintf(&b, "    NF %s (%s) status=%s\n", nf.ID, nf.FunctionalType, nf.Status)
		}
		for _, f := range i.Flowrules {
			fmt.Fprintf(&b, "    rule %s: %s\n", f.ID, f.String())
		}
	}
	for _, id := range g.SAPIDs() {
		fmt.Fprintf(&b, "  [SAP %s]\n", id)
	}
	for _, l := range g.Links {
		fmt.Fprintf(&b, "  link %s: %s.%s -> %s.%s bw=%.0f delay=%.1f\n",
			l.ID, l.SrcNode, l.SrcPort, l.DstNode, l.DstPort, l.Bandwidth, l.Delay)
	}
	for _, h := range g.Hops {
		fmt.Fprintf(&b, "  hop %s: %s.%s -> %s.%s bw=%.0f delay<=%.1f\n",
			h.ID, h.SrcNode, h.SrcPort, h.DstNode, h.DstPort, h.Bandwidth, h.Delay)
	}
	return b.String()
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// Package nffg implements the joint cloud+network data model of the UNIFY
// architecture: the Network Function Forwarding Graph.
//
// The model is the Go rendering of the paper's Yang-defined virtualizer: a
// virtualization view is an arbitrary interconnection of BiS-BiS nodes (Big
// Switch with Big Software — a forwarding element fused with compute and
// storage), and SFC programming consists of (i) assigning NFs to BiS-BiS
// nodes and (ii) editing flowrules within BiS-BiS nodes. The same structure
// carries domain resource reports (capacities), virtualization views, and
// configuration requests (placements + flowrules), which is exactly what lets
// the Unify interface be recursive.
package nffg

import (
	"errors"
	"fmt"
	"sort"
)

// ID identifies nodes (BiS-BiS, NF, SAP) within one NFFG.
type ID string

// Resources describes compute/storage capacity or demand. For BiS-BiS nodes
// Bandwidth/Delay describe the internal switching fabric; for NFs they are
// unused.
type Resources struct {
	CPU     float64 `json:"cpu" xml:"cpu"`
	Mem     float64 `json:"mem" xml:"mem"`         // MB
	Storage float64 `json:"storage" xml:"storage"` // GB
	// Bandwidth is the internal forwarding capacity of a BiS-BiS (per rule
	// admission), Delay the traversal latency added by the node itself.
	Bandwidth float64 `json:"bandwidth,omitempty" xml:"bandwidth,omitempty"`
	Delay     float64 `json:"delay,omitempty" xml:"delay,omitempty"`
}

// Sub returns r minus d; ok is false if any component would go negative.
func (r Resources) Sub(d Resources) (Resources, bool) {
	out := Resources{
		CPU:       r.CPU - d.CPU,
		Mem:       r.Mem - d.Mem,
		Storage:   r.Storage - d.Storage,
		Bandwidth: r.Bandwidth,
		Delay:     r.Delay,
	}
	ok := out.CPU >= 0 && out.Mem >= 0 && out.Storage >= 0
	return out, ok
}

// Add returns r plus d (component-wise for CPU/Mem/Storage).
func (r Resources) Add(d Resources) Resources {
	return Resources{
		CPU:       r.CPU + d.CPU,
		Mem:       r.Mem + d.Mem,
		Storage:   r.Storage + d.Storage,
		Bandwidth: r.Bandwidth,
		Delay:     r.Delay,
	}
}

// Fits reports whether demand d fits within r.
func (r Resources) Fits(d Resources) bool {
	return d.CPU <= r.CPU && d.Mem <= r.Mem && d.Storage <= r.Storage
}

// Port is an attachment point on a node. Infra ports connect static links
// (inter-BiS-BiS, SAP uplinks); NF ports exist on NF nodes and become
// steerable once the NF is placed.
type Port struct {
	ID   string `json:"id" xml:"id"`
	Name string `json:"name,omitempty" xml:"name,omitempty"`
	// SAP marks the port as a service access point binding when set; it
	// carries the SAP's ID so inter-domain stitching can match ends.
	SAP ID `json:"sap,omitempty" xml:"sap,omitempty"`
}

// NodeStatus tracks the deployment lifecycle of NFs.
type NodeStatus string

// NF lifecycle states.
const (
	StatusPlanned  NodeStatus = "planned"  // requested, not yet mapped
	StatusMapped   NodeStatus = "mapped"   // placed on an infra node
	StatusDeployed NodeStatus = "deployed" // instantiated in the domain
	StatusFailed   NodeStatus = "failed"
	StatusStopped  NodeStatus = "stopped"
)

// NF is a network function instance in a graph: either a request (Host empty)
// or a placement (Host names a BiS-BiS node).
type NF struct {
	ID ID `json:"id" xml:"id"`
	// Name is a human label; FunctionalType selects the NF implementation
	// (e.g. "firewall", "dpi", "nat") against the domain's catalogue.
	Name           string `json:"name,omitempty" xml:"name,omitempty"`
	FunctionalType string `json:"functional_type" xml:"functional_type"`
	// DeployType optionally pins the execution environment ("click",
	// "docker", "vm"); empty lets the domain choose.
	DeployType string     `json:"deploy_type,omitempty" xml:"deploy_type,omitempty"`
	Ports      []*Port    `json:"ports" xml:"ports>port"`
	Demand     Resources  `json:"resources" xml:"resources"`
	Host       ID         `json:"host,omitempty" xml:"host,omitempty"` // BiS-BiS this NF is mapped to
	Status     NodeStatus `json:"status,omitempty" xml:"status,omitempty"`
}

// Port returns the NF port with the given ID, or nil.
func (n *NF) Port(id string) *Port {
	for _, p := range n.Ports {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// Infra is a BiS-BiS node: joint forwarding + compute element.
type Infra struct {
	ID     ID     `json:"id" xml:"id"`
	Name   string `json:"name,omitempty" xml:"name,omitempty"`
	Domain string `json:"domain,omitempty" xml:"domain,omitempty"`
	// Type describes the realization ("bisbis" for the unified abstraction,
	// or domain-native kinds like "sdn-switch", "openstack", "un").
	Type  string  `json:"type" xml:"type"`
	Ports []*Port `json:"ports" xml:"ports>port"`
	// Capacity is the total compute/storage budget; mapped NFs consume it.
	Capacity Resources `json:"resources" xml:"resources"`
	// Supported lists the NF functional types this node can execute; empty
	// means forwarding-only (e.g. a legacy OpenFlow switch).
	Supported []string `json:"supported,omitempty" xml:"supported>type,omitempty"`
	// Flowrules is the BiS-BiS flowtable steering traffic among infra and NF
	// ports.
	Flowrules []*Flowrule `json:"flowrules,omitempty" xml:"flowtable>flowrule,omitempty"`
}

// Port returns the infra port with the given ID, or nil.
func (i *Infra) Port(id string) *Port {
	for _, p := range i.Ports {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// SupportsNF reports whether the node may run the functional type.
func (i *Infra) SupportsNF(functional string) bool {
	for _, s := range i.Supported {
		if s == functional {
			return true
		}
	}
	return false
}

// SAP is a service access point: where user traffic enters/leaves the graph.
type SAP struct {
	ID   ID     `json:"id" xml:"id"`
	Name string `json:"name,omitempty" xml:"name,omitempty"`
	Port *Port  `json:"port" xml:"port"`
}

// Link is a static link between two infra (or SAP) ports, with capacity.
type Link struct {
	ID        string  `json:"id" xml:"id"`
	SrcNode   ID      `json:"src_node" xml:"src>node"`
	SrcPort   string  `json:"src_port" xml:"src>port"`
	DstNode   ID      `json:"dst_node" xml:"dst>node"`
	DstPort   string  `json:"dst_port" xml:"dst>port"`
	Bandwidth float64 `json:"bandwidth" xml:"bandwidth"` // capacity
	Delay     float64 `json:"delay" xml:"delay"`
	// Backhaul marks inter-domain links stitched by a parent orchestrator.
	Backhaul bool `json:"backhaul,omitempty" xml:"backhaul,omitempty"`
}

// SGHop is a service-graph next hop: directed edge between NF/SAP ports with
// the traffic requirement the hop must receive.
type SGHop struct {
	ID        string  `json:"id" xml:"id"`
	SrcNode   ID      `json:"src_node" xml:"src>node"`
	SrcPort   string  `json:"src_port" xml:"src>port"`
	DstNode   ID      `json:"dst_node" xml:"dst>node"`
	DstPort   string  `json:"dst_port" xml:"dst>port"`
	Bandwidth float64 `json:"bandwidth,omitempty" xml:"bandwidth,omitempty"` // demand
	Delay     float64 `json:"delay,omitempty" xml:"delay,omitempty"`         // max tolerated
	// FlowDst names the chain's terminal SAP for ingress classification.
	// Orchestrators set it when splitting hops across domains so a border
	// segment still classifies on the true end-to-end destination; empty
	// means "derive by walking the chain".
	FlowDst ID `json:"flow_dst,omitempty" xml:"flow_dst,omitempty"`
}

// Requirement is an end-to-end constraint across a sequence of SG hops
// (typically SAP-to-SAP): the paper's "bandwidth or delay constraints between
// arbitrary elements in the service graph".
type Requirement struct {
	ID        string   `json:"id" xml:"id"`
	SrcNode   ID       `json:"src_node" xml:"src>node"`
	DstNode   ID       `json:"dst_node" xml:"dst>node"`
	HopIDs    []string `json:"hops" xml:"hops>hop"`
	Bandwidth float64  `json:"bandwidth,omitempty" xml:"bandwidth,omitempty"` // min e2e
	Delay     float64  `json:"delay,omitempty" xml:"delay,omitempty"`         // max e2e
}

// NFFG is the complete graph: the single structure exchanged on the Unify
// interface in every direction.
type NFFG struct {
	ID      string `json:"id" xml:"id,attr"`
	Name    string `json:"name,omitempty" xml:"name,omitempty"`
	Version int    `json:"version" xml:"version,attr"`

	Infras map[ID]*Infra `json:"-" xml:"-"`
	NFs    map[ID]*NF    `json:"-" xml:"-"`
	SAPs   map[ID]*SAP   `json:"-" xml:"-"`

	Links []*Link        `json:"links,omitempty" xml:"links>link,omitempty"`
	Hops  []*SGHop       `json:"sg_hops,omitempty" xml:"sg_hops>hop,omitempty"`
	Reqs  []*Requirement `json:"requirements,omitempty" xml:"requirements>requirement,omitempty"`

	// sealed marks the graph as a shared immutable snapshot (see Seal).
	sealed bool
}

// Seal marks the graph as a shared read-only snapshot: orchestration caches
// hand one graph to many readers instead of defensively copying per call, so
// after Seal the graph must never be mutated again. Copy always returns an
// unsealed graph — callers that need to mutate a sealed view copy first.
//
// The discipline is enforced in race and nffg_sealcheck builds, where every
// mutator panics on a sealed graph; release builds compile the check away.
// Seal must happen-before the graph is published to other goroutines (the
// caches publish through atomics, which gives that ordering for free).
func (g *NFFG) Seal() *NFFG {
	g.sealed = true
	return g
}

// Sealed reports whether the graph is a shared read-only snapshot.
func (g *NFFG) Sealed() bool { return g.sealed }

// mustMutable is the per-mutator seal assertion (free in release builds).
func (g *NFFG) mustMutable(op string) {
	if sealCheckEnabled && g.sealed {
		panic("nffg: " + op + " on sealed graph " + g.ID + " (Copy before mutating a shared snapshot)")
	}
}

// Errors shared by model operations.
var (
	ErrDuplicateID = errors.New("nffg: duplicate ID")
	ErrNotFound    = errors.New("nffg: not found")
	ErrInvalid     = errors.New("nffg: invalid graph")
)

// New returns an empty NFFG with the given ID.
func New(id string) *NFFG {
	return NewSized(id, 0, 0, 0)
}

// NewSized returns an empty NFFG with node maps pre-sized for the given
// counts — the allocation-friendly constructor behind Copy and the DoV merge
// paths, where target sizes are known up front.
func NewSized(id string, infras, nfs, saps int) *NFFG {
	return &NFFG{
		ID:     id,
		Infras: make(map[ID]*Infra, infras),
		NFs:    make(map[ID]*NF, nfs),
		SAPs:   make(map[ID]*SAP, saps),
	}
}

// AddInfra inserts a BiS-BiS node.
func (g *NFFG) AddInfra(i *Infra) error {
	g.mustMutable("AddInfra")
	if g.hasNode(i.ID) {
		return fmt.Errorf("%w: %s", ErrDuplicateID, i.ID)
	}
	g.Infras[i.ID] = i
	return nil
}

// AddNF inserts an NF node.
func (g *NFFG) AddNF(n *NF) error {
	g.mustMutable("AddNF")
	if g.hasNode(n.ID) {
		return fmt.Errorf("%w: %s", ErrDuplicateID, n.ID)
	}
	if n.Status == "" {
		n.Status = StatusPlanned
	}
	g.NFs[n.ID] = n
	return nil
}

// AddSAP inserts a service access point.
func (g *NFFG) AddSAP(s *SAP) error {
	g.mustMutable("AddSAP")
	if g.hasNode(s.ID) {
		return fmt.Errorf("%w: %s", ErrDuplicateID, s.ID)
	}
	if s.Port == nil {
		s.Port = &Port{ID: "1"}
	}
	g.SAPs[s.ID] = s
	return nil
}

// RemoveNF deletes an NF and any SG hops touching it.
func (g *NFFG) RemoveNF(id ID) error {
	g.mustMutable("RemoveNF")
	if _, ok := g.NFs[id]; !ok {
		return fmt.Errorf("%w: NF %s", ErrNotFound, id)
	}
	delete(g.NFs, id)
	kept := g.Hops[:0]
	for _, h := range g.Hops {
		if h.SrcNode != id && h.DstNode != id {
			kept = append(kept, h)
		}
	}
	g.Hops = kept
	return nil
}

// AddLink inserts a static link after verifying its endpoints exist.
func (g *NFFG) AddLink(l *Link) error {
	g.mustMutable("AddLink")
	for _, existing := range g.Links {
		if existing.ID == l.ID {
			return fmt.Errorf("%w: link %s", ErrDuplicateID, l.ID)
		}
	}
	if err := g.checkEndpoint(l.SrcNode, l.SrcPort); err != nil {
		return fmt.Errorf("link %s src: %w", l.ID, err)
	}
	if err := g.checkEndpoint(l.DstNode, l.DstPort); err != nil {
		return fmt.Errorf("link %s dst: %w", l.ID, err)
	}
	g.Links = append(g.Links, l)
	return nil
}

// AddDuplexLink adds a bidirectional static link as two directed links with
// "/fwd" and "/rev" suffixes, mirroring topo.AddDuplexLink.
func (g *NFFG) AddDuplexLink(id string, aNode ID, aPort string, bNode ID, bPort string, bw, delay float64) error {
	if err := g.AddLink(&Link{ID: id + "/fwd", SrcNode: aNode, SrcPort: aPort, DstNode: bNode, DstPort: bPort, Bandwidth: bw, Delay: delay}); err != nil {
		return err
	}
	if err := g.AddLink(&Link{ID: id + "/rev", SrcNode: bNode, SrcPort: bPort, DstNode: aNode, DstPort: aPort, Bandwidth: bw, Delay: delay}); err != nil {
		return err
	}
	return nil
}

// AddHop inserts a service-graph hop after verifying endpoints.
func (g *NFFG) AddHop(h *SGHop) error {
	g.mustMutable("AddHop")
	for _, existing := range g.Hops {
		if existing.ID == h.ID {
			return fmt.Errorf("%w: hop %s", ErrDuplicateID, h.ID)
		}
	}
	if err := g.checkEndpoint(h.SrcNode, h.SrcPort); err != nil {
		return fmt.Errorf("hop %s src: %w", h.ID, err)
	}
	if err := g.checkEndpoint(h.DstNode, h.DstPort); err != nil {
		return fmt.Errorf("hop %s dst: %w", h.ID, err)
	}
	g.Hops = append(g.Hops, h)
	return nil
}

// AddReq inserts an end-to-end requirement; all referenced hops must exist.
func (g *NFFG) AddReq(r *Requirement) error {
	g.mustMutable("AddReq")
	for _, hid := range r.HopIDs {
		if g.HopByID(hid) == nil {
			return fmt.Errorf("%w: requirement %s references hop %s", ErrNotFound, r.ID, hid)
		}
	}
	g.Reqs = append(g.Reqs, r)
	return nil
}

// HopByID returns the SG hop with the given ID, or nil.
func (g *NFFG) HopByID(id string) *SGHop {
	for _, h := range g.Hops {
		if h.ID == id {
			return h
		}
	}
	return nil
}

// LinkByID returns the static link with the given ID, or nil.
func (g *NFFG) LinkByID(id string) *Link {
	for _, l := range g.Links {
		if l.ID == id {
			return l
		}
	}
	return nil
}

func (g *NFFG) hasNode(id ID) bool {
	if _, ok := g.Infras[id]; ok {
		return true
	}
	if _, ok := g.NFs[id]; ok {
		return true
	}
	_, ok := g.SAPs[id]
	return ok
}

func (g *NFFG) checkEndpoint(node ID, port string) error {
	if i, ok := g.Infras[node]; ok {
		if i.Port(port) == nil {
			return fmt.Errorf("%w: port %s on infra %s", ErrNotFound, port, node)
		}
		return nil
	}
	if n, ok := g.NFs[node]; ok {
		if n.Port(port) == nil {
			return fmt.Errorf("%w: port %s on NF %s", ErrNotFound, port, node)
		}
		return nil
	}
	if s, ok := g.SAPs[node]; ok {
		if s.Port.ID != port {
			return fmt.Errorf("%w: port %s on SAP %s", ErrNotFound, port, node)
		}
		return nil
	}
	return fmt.Errorf("%w: node %s", ErrNotFound, node)
}

// InfraIDs returns sorted infra node IDs.
func (g *NFFG) InfraIDs() []ID { return sortedIDs(g.Infras) }

// NFIDs returns sorted NF node IDs.
func (g *NFFG) NFIDs() []ID { return sortedIDs(g.NFs) }

// SAPIDs returns sorted SAP IDs.
func (g *NFFG) SAPIDs() []ID { return sortedIDs(g.SAPs) }

// NFsOn returns the NFs mapped onto the given infra node, sorted by ID.
func (g *NFFG) NFsOn(infra ID) []*NF {
	var out []*NF
	for _, id := range g.NFIDs() {
		if g.NFs[id].Host == infra {
			out = append(out, g.NFs[id])
		}
	}
	return out
}

// AvailableResources returns an infra's capacity minus the demand of all NFs
// currently mapped to it.
func (g *NFFG) AvailableResources(infra ID) (Resources, error) {
	i, ok := g.Infras[infra]
	if !ok {
		return Resources{}, fmt.Errorf("%w: infra %s", ErrNotFound, infra)
	}
	avail := i.Capacity
	for _, nf := range g.NFsOn(infra) {
		var ok bool
		avail, ok = avail.Sub(nf.Demand)
		if !ok {
			return avail, fmt.Errorf("%w: infra %s oversubscribed", ErrInvalid, infra)
		}
	}
	return avail, nil
}

// NextVersion bumps the version counter and returns the new value.
func (g *NFFG) NextVersion() int {
	g.mustMutable("NextVersion")
	g.Version++
	return g.Version
}

func sortedIDs[V any](m map[ID]V) []ID {
	ids := make([]ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

package nffg

import (
	"fmt"
	"testing"
)

// benchGraph builds an n-node ring with one SAP uplink and one flowrule per
// node — the shape of a DoV shard snapshot, which Copy and Merge process on
// every read-path cache miss.
func benchGraph(prefix string, n int) *NFFG {
	g := New(prefix)
	for i := 0; i < n; i++ {
		id := ID(fmt.Sprintf("%s-n%03d", prefix, i))
		infra := &Infra{
			ID: id, Type: "bisbis", Domain: prefix,
			Ports:     []*Port{{ID: "1"}, {ID: "2"}, {ID: "3"}},
			Capacity:  Resources{CPU: 16, Mem: 16384, Storage: 128},
			Supported: []string{"firewall", "dpi"},
		}
		if err := g.AddInfra(infra); err != nil {
			panic(err)
		}
		if err := g.AddFlowrule(id, &Flowrule{
			ID: fmt.Sprintf("f%03d", i), Priority: 10,
			Match:  Match{InPort: InfraPort("1")},
			Action: Action{Output: InfraPort("2")},
		}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		src := ID(fmt.Sprintf("%s-n%03d", prefix, i))
		dst := ID(fmt.Sprintf("%s-n%03d", prefix, (i+1)%n))
		if err := g.AddLink(&Link{ID: fmt.Sprintf("%s-r%03d", prefix, i),
			SrcNode: src, SrcPort: "2", DstNode: dst, DstPort: "1", Bandwidth: 1000, Delay: 0.5}); err != nil {
			panic(err)
		}
	}
	sap := ID(prefix + "-sap")
	if err := g.AddSAP(&SAP{ID: sap}); err != nil {
		panic(err)
	}
	if err := g.AddLink(&Link{ID: prefix + "-u", SrcNode: sap, SrcPort: "1",
		DstNode: ID(fmt.Sprintf("%s-n000", prefix)), DstPort: "3", Bandwidth: 1000, Delay: 0.5}); err != nil {
		panic(err)
	}
	return g
}

// BenchmarkCopy measures the deep copy on the read-path miss: pre-sized maps
// and edge slices keep allocations proportional to node count, with no
// append-regrowth waste.
func BenchmarkCopy(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		g := benchGraph("d0", n)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = g.Copy()
			}
		})
	}
}

// BenchmarkMerge measures folding k shard views into one cut (the all-shard
// merge behind the DoV read path), with pre-grown edge slices.
func BenchmarkMerge(b *testing.B) {
	for _, shards := range []int{4, 16} {
		views := make([]*NFFG, shards)
		for i := range views {
			views[i] = benchGraph(fmt.Sprintf("d%d", i), 16)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := New("dov")
				for _, v := range views {
					if err := m.Merge(v); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

//go:build race || nffg_sealcheck

package nffg

// sealCheckEnabled turns every mutator into a seal assertion. Race builds
// (the CI test configuration) get it for free; release builds compile the
// checks away entirely. Enable explicitly with -tags nffg_sealcheck.
const sealCheckEnabled = true

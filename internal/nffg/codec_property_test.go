package nffg

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomGraph generates a structurally valid NFFG with random nodes, links,
// placements, flowrules, hops and requirements.
func randomGraph(rng *rand.Rand) *NFFG {
	g := New(fmt.Sprintf("g%d", rng.Intn(1000)))
	g.Version = rng.Intn(100)
	nInfra := 1 + rng.Intn(5)
	types := []string{"firewall", "dpi", "nat"}
	for i := 0; i < nInfra; i++ {
		infra := &Infra{
			ID:     ID(fmt.Sprintf("bb%d", i)),
			Domain: fmt.Sprintf("dom%d", i%2),
			Type:   "bisbis",
			Capacity: Resources{
				CPU: float64(4 + rng.Intn(16)), Mem: float64(1024 * (1 + rng.Intn(8))), Storage: float64(10 + rng.Intn(90)),
			},
			Supported: types[:1+rng.Intn(len(types))],
		}
		for p := 1; p <= 2+rng.Intn(3); p++ {
			infra.Ports = append(infra.Ports, &Port{ID: fmt.Sprint(p)})
		}
		_ = g.AddInfra(infra)
	}
	nSAP := 1 + rng.Intn(3)
	for i := 0; i < nSAP; i++ {
		_ = g.AddSAP(&SAP{ID: ID(fmt.Sprintf("sap%d", i)), Port: &Port{ID: "1"}})
	}
	// Links between random infra ports.
	infras := g.InfraIDs()
	for i := 0; i < rng.Intn(6); i++ {
		a := infras[rng.Intn(len(infras))]
		b := infras[rng.Intn(len(infras))]
		_ = g.AddLink(&Link{
			ID:      fmt.Sprintf("l%d", i),
			SrcNode: a, SrcPort: "1",
			DstNode: b, DstPort: "2",
			Bandwidth: float64(rng.Intn(1000)), Delay: rng.Float64() * 10,
		})
	}
	// NFs placed on supporting hosts.
	for i := 0; i < rng.Intn(4); i++ {
		host := infras[rng.Intn(len(infras))]
		nf := &NF{
			ID:             ID(fmt.Sprintf("nf%d", i)),
			FunctionalType: g.Infras[host].Supported[0],
			Ports:          []*Port{{ID: "1"}, {ID: "2"}},
			Demand:         Resources{CPU: 1, Mem: 64, Storage: 1},
			Host:           host,
			Status:         StatusMapped,
		}
		if err := g.AddNF(nf); err != nil {
			continue
		}
		// Maybe a flowrule into the NF.
		if rng.Intn(2) == 0 {
			_ = g.AddFlowrule(host, &Flowrule{
				ID:     fmt.Sprintf("r%d", i),
				Match:  Match{InPort: InfraPort("1"), Tag: fmt.Sprintf("t%d", i), DstSAP: ID(fmt.Sprintf("sap%d", rng.Intn(nSAP)))},
				Action: Action{Output: NFPort(nf.ID, "1"), PopTag: true},
				HopID:  fmt.Sprintf("h%d", i),
			})
		}
	}
	// Hops between SAPs and NFs.
	saps := g.SAPIDs()
	nfs := g.NFIDs()
	if len(nfs) > 0 {
		for i := 0; i < rng.Intn(3); i++ {
			h := &SGHop{
				ID:      fmt.Sprintf("hop%d", i),
				SrcNode: saps[rng.Intn(len(saps))], SrcPort: "1",
				DstNode: nfs[rng.Intn(len(nfs))], DstPort: "1",
				Bandwidth: float64(rng.Intn(100)),
				FlowDst:   saps[rng.Intn(len(saps))],
			}
			if err := g.AddHop(h); err == nil && rng.Intn(2) == 0 {
				_ = g.AddReq(&Requirement{
					ID: fmt.Sprintf("req%d", i), SrcNode: h.SrcNode, DstNode: h.DstNode,
					HopIDs: []string{h.ID}, Delay: rng.Float64() * 100,
				})
			}
		}
	}
	return g
}

// Property: JSON and XML roundtrips preserve arbitrary valid graphs exactly
// (diff-empty and render-identical).
func TestCodecRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		if err := g.Validate(); err != nil {
			return true // generator produced something Validate rejects; skip
		}
		// JSON.
		var jbuf bytes.Buffer
		if err := g.EncodeJSON(&jbuf); err != nil {
			return false
		}
		fromJSON, err := DecodeJSON(&jbuf)
		if err != nil {
			return false
		}
		if g.Render() != fromJSON.Render() {
			return false
		}
		dj, err := Diff(g, fromJSON)
		if err != nil || !dj.Empty() {
			return false
		}
		// XML.
		var xbuf bytes.Buffer
		if err := g.EncodeXML(&xbuf); err != nil {
			return false
		}
		fromXML, err := DecodeXML(strings.NewReader(xbuf.String()))
		if err != nil {
			return false
		}
		if g.Render() != fromXML.Render() {
			return false
		}
		dx, err := Diff(g, fromXML)
		if err != nil || !dx.Empty() {
			return false
		}
		// Hop metadata (FlowDst) survives both codecs.
		for i, h := range g.Hops {
			if fromJSON.Hops[i].FlowDst != h.FlowDst || fromXML.Hops[i].FlowDst != h.FlowDst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Copy is always deep — mutating every mutable field of the copy
// never leaks into the original (spot-checked via render stability).
func TestCopyIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		before := g.Render()
		c := g.Copy()
		for _, i := range c.Infras {
			i.Capacity.CPU = 0
			for _, p := range i.Ports {
				p.ID = "mutated"
			}
			for _, f := range i.Flowrules {
				f.Action.PopTag = !f.Action.PopTag
			}
		}
		for _, nf := range c.NFs {
			nf.Host = "mutated"
		}
		for _, l := range c.Links {
			l.Bandwidth = -1
		}
		for _, h := range c.Hops {
			h.FlowDst = "mutated"
		}
		for _, r := range c.Reqs {
			if len(r.HopIDs) > 0 {
				r.HopIDs[0] = "mutated"
			}
		}
		return g.Render() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

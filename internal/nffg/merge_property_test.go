package nffg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// prefixedGraph builds a random graph whose node IDs carry a unique prefix,
// so merges of differently-prefixed graphs never collide except on the
// shared border SAP.
func prefixedGraph(rng *rand.Rand, prefix string, border ID) *NFFG {
	g := New(prefix)
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		infra := &Infra{
			ID:       ID(fmt.Sprintf("%s-bb%d", prefix, i)),
			Domain:   prefix,
			Type:     "bisbis",
			Capacity: Resources{CPU: 8, Mem: 4096, Storage: 32},
			Ports:    []*Port{{ID: "1"}, {ID: "2"}, {ID: "3"}},
		}
		_ = g.AddInfra(infra)
	}
	_ = g.AddSAP(&SAP{ID: ID(prefix + "-sap"), Port: &Port{ID: "1"}})
	_ = g.AddSAP(&SAP{ID: border, Port: &Port{ID: "1"}})
	ids := g.InfraIDs()
	_ = g.AddLink(&Link{ID: prefix + "-u", SrcNode: ID(prefix + "-sap"), SrcPort: "1", DstNode: ids[0], DstPort: "1", Bandwidth: 100})
	_ = g.AddLink(&Link{ID: prefix + "-b", SrcNode: ids[len(ids)-1], SrcPort: "2", DstNode: border, DstPort: "1", Bandwidth: 100})
	for i := 0; i < len(ids)-1; i++ {
		_ = g.AddLink(&Link{ID: fmt.Sprintf("%s-l%d", prefix, i), SrcNode: ids[i], SrcPort: "3", DstNode: ids[i+1], DstPort: "3", Bandwidth: 100})
	}
	return g
}

// Property: merging k disjoint domain views stitched at one border SAP
// yields exactly the union of nodes, one shared SAP, the union of links,
// and validates.
func TestMergeUnionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		var views []*NFFG
		wantInfras, wantLinks := 0, 0
		for i := 0; i < k; i++ {
			v := prefixedGraph(rng, fmt.Sprintf("d%d", i), "border")
			wantInfras += len(v.Infras)
			wantLinks += len(v.Links)
			views = append(views, v)
		}
		dov := New("dov")
		for _, v := range views {
			if err := dov.Merge(v); err != nil {
				return false
			}
		}
		if len(dov.Infras) != wantInfras {
			return false
		}
		// k per-domain user SAPs + 1 shared border.
		if len(dov.SAPs) != k+1 {
			return false
		}
		if len(dov.Links) != wantLinks {
			return false
		}
		if err := dov.Validate(); err != nil {
			return false
		}
		// All domains reachable from each other through the border SAP.
		tg := dov.InfraTopo()
		first := dov.InfraIDs()[0]
		for _, id := range dov.InfraIDs() {
			// Links are directed both ways along the chains here? They are
			// single-direction; use weak connectivity via Components.
			_ = id
		}
		comps := tg.Components()
		return len(comps) == 1 && first != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge never mutates its source graphs.
func TestMergeSourceIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := prefixedGraph(rng, "a", "bx")
		bGraph := prefixedGraph(rng, "b", "bx")
		aBefore := a.Render()
		bBefore := bGraph.Render()
		dov := New("dov")
		if err := dov.Merge(a); err != nil {
			return false
		}
		if err := dov.Merge(bGraph); err != nil {
			return false
		}
		// Mutate the merged graph heavily.
		for _, i := range dov.Infras {
			i.Capacity.CPU = -1
		}
		for _, l := range dov.Links {
			l.Bandwidth = -1
		}
		return a.Render() == aBefore && bGraph.Render() == bBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package nffg

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func richGraph(t *testing.T) *NFFG {
	t.Helper()
	g, err := NewBuilder("demo").
		BiSBiS("bb1", "mininet", 4, Resources{CPU: 8, Mem: 4096, Storage: 50}, "firewall").
		BiSBiS("bb2", "openstack", 4, Resources{CPU: 32, Mem: 65536, Storage: 1000}, "dpi", "nat").
		SAP("sap1").SAP("sap2").
		Link("l1", "sap1", "1", "bb1", "1", 100, 1).
		Link("l2", "bb1", "2", "bb2", "1", 1000, 2).
		Link("l3", "bb2", "2", "sap2", "1", 100, 1).
		MappedNF("fw", "firewall", 2, Resources{CPU: 2, Mem: 512, Storage: 1}, "bb1").
		Chain("c1", 10, 20, "sap1", "fw", "sap2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddFlowrule("bb1", &Flowrule{
		ID:        "r1",
		Match:     Match{InPort: InfraPort("1"), MatchUntagged: true},
		Action:    Action{Output: NFPort("fw", "1"), PushTag: "c1"},
		Bandwidth: 10, HopID: "c1-1",
	}); err != nil {
		t.Fatal(err)
	}
	_ = g.AddReq(&Requirement{ID: "req1", SrcNode: "sap1", DstNode: "sap2", HopIDs: []string{"c1-1", "c1-2"}, Bandwidth: 10, Delay: 40})
	g.Version = 7
	return g
}

func graphsEquivalent(t *testing.T, a, b *NFFG) {
	t.Helper()
	if a.ID != b.ID || a.Version != b.Version {
		t.Fatalf("header mismatch: %s v%d vs %s v%d", a.ID, a.Version, b.ID, b.Version)
	}
	if len(a.Infras) != len(b.Infras) || len(a.NFs) != len(b.NFs) || len(a.SAPs) != len(b.SAPs) {
		t.Fatalf("node counts differ: %s vs %s", a.Summary(), b.Summary())
	}
	if len(a.Links) != len(b.Links) || len(a.Hops) != len(b.Hops) || len(a.Reqs) != len(b.Reqs) {
		t.Fatalf("edge counts differ: %s vs %s", a.Summary(), b.Summary())
	}
	d, err := Diff(a, b)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !d.Empty() {
		t.Fatalf("decoded graph differs: %+v", d)
	}
	if a.Render() != b.Render() {
		t.Fatalf("renders differ:\n%s\n---\n%s", a.Render(), b.Render())
	}
}

func TestJSONRoundtrip(t *testing.T) {
	g := richGraph(t)
	var buf bytes.Buffer
	if err := g.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, back)
}

func TestJSONDeterministic(t *testing.T) {
	g := richGraph(t)
	a, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g.Copy())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("JSON encoding must be deterministic across copies")
	}
}

func TestXMLRoundtrip(t *testing.T) {
	g := richGraph(t)
	var buf bytes.Buffer
	if err := g.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "<virtualizer") {
		t.Fatalf("XML should use virtualizer root element:\n%s", s)
	}
	back, err := DecodeXML(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, back)
}

func TestXMLStringContainsModel(t *testing.T) {
	g := richGraph(t)
	s, err := g.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<infra>", "<nf>", "<sap>", "<flowtable>", "firewall"} {
		if !strings.Contains(s, want) {
			t.Fatalf("XML missing %q:\n%s", want, s)
		}
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON must fail")
	}
	// Duplicate IDs inside the payload must be rejected by fromWire.
	payload := `{"id":"x","version":1,"infras":[{"id":"a","type":"bisbis","ports":[],"resources":{"cpu":1,"mem":1,"storage":1}},{"id":"a","type":"bisbis","ports":[],"resources":{"cpu":1,"mem":1,"storage":1}}]}`
	if _, err := DecodeJSON(strings.NewReader(payload)); err == nil {
		t.Fatal("duplicate infra IDs must fail decode")
	}
}

func TestDecodeXMLErrors(t *testing.T) {
	if _, err := DecodeXML(strings.NewReader("<virtualizer")); err == nil {
		t.Fatal("broken XML must fail")
	}
}

func TestEmptyGraphRoundtrip(t *testing.T) {
	g := New("empty")
	var buf bytes.Buffer
	if err := g.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "empty" || len(back.Infras) != 0 {
		t.Fatalf("empty graph mangled: %s", back.Summary())
	}
}

package nffg

import "testing"

// TestSealBlocksMutators pins the read-only handle discipline: every mutator
// panics on a sealed graph (in seal-check builds), and Copy hands back an
// unsealed graph that mutates freely.
func TestSealBlocksMutators(t *testing.T) {
	g := New("sealed")
	if err := g.AddInfra(&Infra{ID: "n1", Type: "bisbis", Ports: []*Port{{ID: "1"}, {ID: "2"}},
		Capacity: Resources{CPU: 4, Mem: 1024, Storage: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSAP(&SAP{ID: "sap1"}); err != nil {
		t.Fatal(err)
	}
	g.Seal()
	if !g.Sealed() {
		t.Fatal("Seal did not mark the graph")
	}

	c := g.Copy()
	if c.Sealed() {
		t.Fatal("Copy of a sealed graph must be unsealed")
	}
	if err := c.AddSAP(&SAP{ID: "sap2"}); err != nil {
		t.Fatalf("mutating the copy: %v", err)
	}

	if !sealCheckEnabled {
		t.Skip("seal checks compiled out (enable with -race or -tags nffg_sealcheck)")
	}
	mutators := map[string]func(){
		"AddInfra":    func() { _ = g.AddInfra(&Infra{ID: "n2"}) },
		"AddNF":       func() { _ = g.AddNF(&NF{ID: "nf1"}) },
		"AddSAP":      func() { _ = g.AddSAP(&SAP{ID: "sap3"}) },
		"AddLink":     func() { _ = g.AddLink(&Link{ID: "l1", SrcNode: "sap1", SrcPort: "1", DstNode: "n1", DstPort: "1"}) },
		"AddHop":      func() { _ = g.AddHop(&SGHop{ID: "h1", SrcNode: "sap1", SrcPort: "1", DstNode: "n1", DstPort: "1"}) },
		"AddReq":      func() { _ = g.AddReq(&Requirement{ID: "r1"}) },
		"AddFlowrule": func() { _ = g.AddFlowrule("n1", &Flowrule{ID: "f1"}) },
		"RemoveNF":    func() { _ = g.RemoveNF("nf1") },
		"Merge":       func() { _ = g.Merge(New("other")) },
		"Apply":       func() { _ = g.Apply(&Delta{}) },
		"NextVersion": func() { _ = g.NextVersion() },
	}
	for name, mutate := range mutators {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a sealed graph did not panic", name)
				}
			}()
			mutate()
		}()
	}
}

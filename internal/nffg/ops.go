package nffg

import (
	"fmt"
	"slices"
	"sort"

	"github.com/unify-repro/escape/internal/topo"
)

// Copy returns a deep copy of the graph. The copy is never sealed (it is the
// escape hatch for mutating a shared snapshot), and its maps and edge slices
// are pre-sized from the source — Copy sits on every cache miss of the
// orchestration read path, so its allocation count matters.
func (g *NFFG) Copy() *NFFG {
	c := NewSized(g.ID, len(g.Infras), len(g.NFs), len(g.SAPs))
	c.Name = g.Name
	c.Version = g.Version
	for id, i := range g.Infras {
		c.Infras[id] = copyInfra(i)
	}
	for id, n := range g.NFs {
		c.NFs[id] = copyNF(n)
	}
	for id, s := range g.SAPs {
		p := *s.Port
		c.SAPs[id] = &SAP{ID: s.ID, Name: s.Name, Port: &p}
	}
	if len(g.Links) > 0 {
		c.Links = make([]*Link, 0, len(g.Links))
	}
	for _, l := range g.Links {
		cl := *l
		c.Links = append(c.Links, &cl)
	}
	if len(g.Hops) > 0 {
		c.Hops = make([]*SGHop, 0, len(g.Hops))
	}
	for _, h := range g.Hops {
		ch := *h
		c.Hops = append(c.Hops, &ch)
	}
	if len(g.Reqs) > 0 {
		c.Reqs = make([]*Requirement, 0, len(g.Reqs))
	}
	for _, r := range g.Reqs {
		cr := *r
		cr.HopIDs = append([]string(nil), r.HopIDs...)
		c.Reqs = append(c.Reqs, &cr)
	}
	return c
}

func copyInfra(i *Infra) *Infra {
	c := *i
	c.Ports = copyPorts(i.Ports)
	c.Supported = append([]string(nil), i.Supported...)
	c.Flowrules = nil
	if len(i.Flowrules) > 0 {
		c.Flowrules = make([]*Flowrule, 0, len(i.Flowrules))
	}
	for _, f := range i.Flowrules {
		cf := *f
		c.Flowrules = append(c.Flowrules, &cf)
	}
	return &c
}

func copyNF(n *NF) *NF {
	c := *n
	c.Ports = copyPorts(n.Ports)
	return &c
}

func copyPorts(ps []*Port) []*Port {
	out := make([]*Port, 0, len(ps))
	for _, p := range ps {
		cp := *p
		out = append(out, &cp)
	}
	return out
}

// Validate checks structural invariants: endpoint existence for every link,
// hop and flowrule; NF hosts exist and support the NF's functional type; no
// infra node is oversubscribed; requirements reference existing hops.
func (g *NFFG) Validate() error {
	for _, l := range g.Links {
		if err := g.checkEndpoint(l.SrcNode, l.SrcPort); err != nil {
			return fmt.Errorf("link %s: %w", l.ID, err)
		}
		if err := g.checkEndpoint(l.DstNode, l.DstPort); err != nil {
			return fmt.Errorf("link %s: %w", l.ID, err)
		}
	}
	for _, h := range g.Hops {
		if err := g.checkEndpoint(h.SrcNode, h.SrcPort); err != nil {
			return fmt.Errorf("hop %s: %w", h.ID, err)
		}
		if err := g.checkEndpoint(h.DstNode, h.DstPort); err != nil {
			return fmt.Errorf("hop %s: %w", h.ID, err)
		}
	}
	for _, id := range g.NFIDs() {
		nf := g.NFs[id]
		if nf.Host == "" {
			continue
		}
		host, ok := g.Infras[nf.Host]
		if !ok {
			// In a pure service graph (no infrastructure), Host is an
			// external placement pin resolved by a lower layer against its
			// own view; only graphs that carry infrastructure must resolve
			// hosts internally.
			if len(g.Infras) == 0 {
				continue
			}
			return fmt.Errorf("%w: NF %s host %s missing", ErrInvalid, id, nf.Host)
		}
		if len(host.Supported) > 0 && !host.SupportsNF(nf.FunctionalType) {
			return fmt.Errorf("%w: NF %s type %q unsupported on %s", ErrInvalid, id, nf.FunctionalType, nf.Host)
		}
	}
	for _, id := range g.InfraIDs() {
		if _, err := g.AvailableResources(id); err != nil {
			return err
		}
		for _, f := range g.Infras[id].Flowrules {
			if err := g.checkRulePort(g.Infras[id], f.Match.InPort); err != nil {
				return fmt.Errorf("infra %s flowrule %s: %w", id, f.ID, err)
			}
			if err := g.checkRulePort(g.Infras[id], f.Action.Output); err != nil {
				return fmt.Errorf("infra %s flowrule %s: %w", id, f.ID, err)
			}
		}
	}
	for _, r := range g.Reqs {
		for _, hid := range r.HopIDs {
			if g.HopByID(hid) == nil {
				return fmt.Errorf("%w: requirement %s hop %s missing", ErrInvalid, r.ID, hid)
			}
		}
	}
	return nil
}

// InfraTopo projects the static-link topology (infra + SAP nodes) into a
// topo.Graph for path computation. Link IDs are preserved.
func (g *NFFG) InfraTopo() *topo.Graph {
	t := topo.New()
	for _, id := range g.InfraIDs() {
		t.EnsureNode(topo.NodeID(id))
	}
	for _, id := range g.SAPIDs() {
		t.EnsureNode(topo.NodeID(id))
	}
	for _, l := range g.Links {
		_ = t.AddLink(topo.Link{
			ID:        topo.LinkID(l.ID),
			Src:       topo.NodeID(l.SrcNode),
			Dst:       topo.NodeID(l.DstNode),
			Bandwidth: l.Bandwidth,
			Delay:     l.Delay,
			Cost:      1,
		})
	}
	return t
}

// Merge folds other into g: disjoint node sets are required except for SAPs,
// which stitch (same SAP ID appearing in two domains is the inter-domain
// attachment point). Links and hops are appended. Used by the resource
// orchestrator to build the global domain view (DoV).
func (g *NFFG) Merge(other *NFFG) error {
	g.mustMutable("Merge")
	for _, id := range other.InfraIDs() {
		if g.hasNode(id) {
			return fmt.Errorf("%w: infra %s present in both graphs", ErrDuplicateID, id)
		}
	}
	for _, id := range other.NFIDs() {
		if g.hasNode(id) {
			return fmt.Errorf("%w: NF %s present in both graphs", ErrDuplicateID, id)
		}
	}
	// Pre-grow the edge slices: a DoV merge folds many domain views into one
	// graph, and growing append-by-append reallocates on every shard.
	g.Links = slices.Grow(g.Links, len(other.Links))
	g.Hops = slices.Grow(g.Hops, len(other.Hops))
	g.Reqs = slices.Grow(g.Reqs, len(other.Reqs))
	for _, id := range other.InfraIDs() {
		g.Infras[id] = copyInfra(other.Infras[id])
	}
	for _, id := range other.NFIDs() {
		g.NFs[id] = copyNF(other.NFs[id])
	}
	for _, id := range other.SAPIDs() {
		if _, ok := g.SAPs[id]; ok {
			continue // shared SAP: stitching point
		}
		p := *other.SAPs[id].Port
		g.SAPs[id] = &SAP{ID: id, Name: other.SAPs[id].Name, Port: &p}
	}
	for _, l := range other.Links {
		cl := *l
		if g.LinkByID(l.ID) != nil {
			cl.ID = fmt.Sprintf("%s@%s", l.ID, other.ID)
		}
		g.Links = append(g.Links, &cl)
	}
	for _, h := range other.Hops {
		ch := *h
		g.Hops = append(g.Hops, &ch)
	}
	for _, r := range other.Reqs {
		cr := *r
		cr.HopIDs = append([]string(nil), r.HopIDs...)
		g.Reqs = append(g.Reqs, &cr)
	}
	return nil
}

// Delta is the difference between two NFFGs sharing a node universe: what an
// orchestrator must instantiate and tear down to move a domain from the old
// configuration to the new one. It is the payload equivalent of a NETCONF
// edit-config on the virtualizer model.
type Delta struct {
	// AddNFs are NFs (with Host set) to instantiate.
	AddNFs []*NF
	// DelNFs are NF IDs to terminate.
	DelNFs []ID
	// AddRules maps infra ID to flowrules to install.
	AddRules map[ID][]*Flowrule
	// DelRules maps infra ID to flowrules to remove (matched by Match key).
	DelRules map[ID][]*Flowrule
}

// Empty reports whether the delta carries no change.
func (d *Delta) Empty() bool {
	return len(d.AddNFs) == 0 && len(d.DelNFs) == 0 && len(d.AddRules) == 0 && len(d.DelRules) == 0
}

// Counts returns (NF additions, NF deletions, rule additions, rule deletions).
func (d *Delta) Counts() (int, int, int, int) {
	ar, dr := 0, 0
	for _, rs := range d.AddRules {
		ar += len(rs)
	}
	for _, rs := range d.DelRules {
		dr += len(rs)
	}
	return len(d.AddNFs), len(d.DelNFs), ar, dr
}

// Diff computes the delta that transforms old into new. Both graphs must
// describe the same infrastructure (same infra IDs); only NF placements and
// flowtables are compared — topology changes are a domain event, not a
// configuration.
func Diff(oldG, newG *NFFG) (*Delta, error) {
	d := &Delta{AddRules: map[ID][]*Flowrule{}, DelRules: map[ID][]*Flowrule{}}
	for _, id := range newG.InfraIDs() {
		if _, ok := oldG.Infras[id]; !ok {
			return nil, fmt.Errorf("%w: infra %s only in new graph", ErrInvalid, id)
		}
	}
	for _, id := range oldG.InfraIDs() {
		if _, ok := newG.Infras[id]; !ok {
			return nil, fmt.Errorf("%w: infra %s only in old graph", ErrInvalid, id)
		}
	}
	// NF placements.
	for _, id := range newG.NFIDs() {
		nf := newG.NFs[id]
		if nf.Host == "" {
			continue
		}
		old, ok := oldG.NFs[id]
		switch {
		case !ok || old.Host == "":
			d.AddNFs = append(d.AddNFs, copyNF(nf))
		case old.Host != nf.Host:
			// Migration = delete + add.
			d.DelNFs = append(d.DelNFs, id)
			d.AddNFs = append(d.AddNFs, copyNF(nf))
		}
	}
	for _, id := range oldG.NFIDs() {
		old := oldG.NFs[id]
		if old.Host == "" {
			continue
		}
		nf, ok := newG.NFs[id]
		if !ok || nf.Host == "" {
			d.DelNFs = append(d.DelNFs, id)
		}
	}
	sort.Slice(d.DelNFs, func(i, j int) bool { return d.DelNFs[i] < d.DelNFs[j] })
	// Flowtables, per infra, keyed by Match.
	for _, id := range newG.InfraIDs() {
		oldRules := indexRules(oldG.Infras[id].Flowrules)
		newRules := indexRules(newG.Infras[id].Flowrules)
		for k, nf := range newRules {
			if of, ok := oldRules[k]; !ok || !of.Equal(nf) {
				cf := *nf
				d.AddRules[id] = append(d.AddRules[id], &cf)
				if ok {
					cof := *of
					d.DelRules[id] = append(d.DelRules[id], &cof)
				}
			}
		}
		for k, of := range oldRules {
			if _, ok := newRules[k]; !ok {
				cof := *of
				d.DelRules[id] = append(d.DelRules[id], &cof)
			}
		}
		sortRules(d.AddRules[id])
		sortRules(d.DelRules[id])
		if len(d.AddRules[id]) == 0 {
			delete(d.AddRules, id)
		}
		if len(d.DelRules[id]) == 0 {
			delete(d.DelRules, id)
		}
	}
	return d, nil
}

// Apply mutates g by the delta: removes deleted NFs and rules, installs added
// ones. Apply(Diff(a, b), a) makes a equivalent to b for placements and
// flowtables.
func (g *NFFG) Apply(d *Delta) error {
	g.mustMutable("Apply")
	for _, id := range d.DelNFs {
		if nf, ok := g.NFs[id]; ok {
			nf.Host = ""
			nf.Status = StatusStopped
		}
	}
	for infra, rules := range d.DelRules {
		i, ok := g.Infras[infra]
		if !ok {
			return fmt.Errorf("%w: infra %s", ErrNotFound, infra)
		}
		drop := map[Match]bool{}
		for _, f := range rules {
			drop[f.Match] = true
		}
		kept := i.Flowrules[:0]
		for _, f := range i.Flowrules {
			if !drop[f.Match] {
				kept = append(kept, f)
			}
		}
		i.Flowrules = kept
	}
	for _, nf := range d.AddNFs {
		if existing, ok := g.NFs[nf.ID]; ok {
			existing.Host = nf.Host
			existing.Status = StatusMapped
			existing.Demand = nf.Demand
		} else {
			c := copyNF(nf)
			c.Status = StatusMapped
			g.NFs[nf.ID] = c
		}
	}
	for infra, rules := range d.AddRules {
		i, ok := g.Infras[infra]
		if !ok {
			return fmt.Errorf("%w: infra %s", ErrNotFound, infra)
		}
		for _, f := range rules {
			cf := *f
			// Rule identity for diffing is the Match; IDs are advisory. An
			// ID collision with an unrelated existing rule is resolved by
			// renaming (Equal ignores IDs, so convergence is unaffected).
			for n := 2; ruleIDExists(i, cf.ID); n++ {
				cf.ID = fmt.Sprintf("%s~%d", f.ID, n)
			}
			if err := g.AddFlowrule(infra, &cf); err != nil {
				return err
			}
		}
	}
	g.NextVersion()
	return nil
}

func ruleIDExists(i *Infra, id string) bool {
	if id == "" {
		return false
	}
	for _, f := range i.Flowrules {
		if f.ID == id {
			return true
		}
	}
	return false
}

func indexRules(rules []*Flowrule) map[Match]*Flowrule {
	m := make(map[Match]*Flowrule, len(rules))
	for _, f := range rules {
		m[f.Match] = f
	}
	return m
}

func sortRules(rs []*Flowrule) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Match.InPort != b.Match.InPort {
			return a.Match.InPort.String() < b.Match.InPort.String()
		}
		return a.Match.Tag < b.Match.Tag
	})
}

package core

// The versioned read plane: every layer that serves a northbound view can
// name the version it serves — a strong ETag derived from the generation
// state that keys the read caches, plus the scalar commit epoch — and can
// block until that version moves. The API tier builds conditional GETs
// (If-None-Match → 304), long-poll watch streams, and read replicas on top
// of exactly these three primitives; nothing here knows about HTTP.
//
// Ordering discipline: version readers load the scalar generation BEFORE
// snapshotting the cut/graph it describes. A commit landing in between makes
// the served content NEWER than the advertised generation — so a watcher
// resuming from that generation may see the same content twice (deduped by
// ETag), but can never miss a committed change.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"github.com/unify-repro/escape/internal/nffg"
)

// ViewVersion names one published northbound view.
type ViewVersion struct {
	// ETag is a strong validator: two equal ETags from the same layer denote
	// byte-identical sealed views, because the tag hashes the generation
	// vector that keys the view cache and a shard graph is only ever
	// replaced under a generation bump. The tag is unquoted; HTTP framing
	// (quoting, If-None-Match parsing) is the API layer's business.
	ETag string
	// Generation is the scalar commit epoch the view is AT LEAST as new as —
	// the resume cursor for watch streams (strictly monotonic per process).
	Generation uint64
}

// etagOf hashes a layer's canonical generation state into a strong ETag.
func etagOf(id string, keys []string, gens []uint64) string {
	var b strings.Builder
	b.WriteString(id)
	for i, k := range keys {
		fmt.Fprintf(&b, "\x00%s=%d", k, gens[i])
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// etag derives the strong view validator of one consistent cut.
func (v genVec) etag(id string) string { return etagOf(id, v.keys, v.gens) }

// changeNotifier is a closed-channel broadcast: wake() releases every
// goroutine parked on the channel wait() handed out. Waiters must arm the
// channel (call wait) BEFORE re-checking the condition, so a bump landing
// between the check and the park still wakes them.
type changeNotifier struct {
	mu sync.Mutex
	ch chan struct{}
}

// wake releases all current waiters. Cheap enough to call inside commit
// critical sections: a mutex hop plus, at most, one channel close.
func (n *changeNotifier) wake() {
	n.mu.Lock()
	if n.ch != nil {
		close(n.ch)
		n.ch = nil
	}
	n.mu.Unlock()
}

// wait returns a channel closed at the next wake. Lazily allocated so idle
// layers carry no channel at all.
func (n *changeNotifier) wait() <-chan struct{} {
	n.mu.Lock()
	if n.ch == nil {
		n.ch = make(chan struct{})
	}
	ch := n.ch
	n.mu.Unlock()
	return ch
}

// --- ResourceOrchestrator ----------------------------------------------------

// ViewVersion returns the current version of the northbound view without
// computing the view itself — the cheap path behind conditional GETs.
func (ro *ResourceOrchestrator) ViewVersion() ViewVersion {
	gen := ro.nbGen() // before the cut: content ≥ advertised generation
	_, vec := ro.currentCut()
	return ViewVersion{ETag: vec.etag(ro.id), Generation: gen}
}

// VersionedView returns the northbound view together with the version that
// names it. The view is a SHARED sealed snapshot (Copy before mutating); the
// version's ETag matches the exact cut the view derives from.
func (ro *ResourceOrchestrator) VersionedView(ctx context.Context) (*nffg.NFFG, ViewVersion, error) {
	if err := ctx.Err(); err != nil {
		return nil, ViewVersion{}, err
	}
	gen := ro.nbGen() // before the cut (see package comment)
	graphs, vec := ro.currentCut()
	v, err := ro.viewFromCut(graphs, vec)
	if err != nil {
		return nil, ViewVersion{}, err
	}
	return v, ViewVersion{ETag: vec.etag(ro.id), Generation: gen}, nil
}

// WaitVersion blocks until the layer's generation exceeds from (returning
// the version that crossed it) or ctx ends. from=0 with any committed change
// already applied returns immediately — callers resume a watch by passing
// the last generation they saw.
func (ro *ResourceOrchestrator) WaitVersion(ctx context.Context, from uint64) (ViewVersion, error) {
	for {
		ch := ro.watch.wait() // arm before the check: no lost wakeups
		if v := ro.ViewVersion(); v.Generation > from {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return ViewVersion{}, ctx.Err()
		case <-ch:
		}
	}
}

// nbGen is the northbound version cursor: the commit epoch plus the
// service-table version. Both counters only grow, so the sum is monotonic;
// loading them separately can only under-read, which keeps the "content is
// at least as new as advertised" invariant.
func (ro *ResourceOrchestrator) nbGen() uint64 {
	return ro.epoch.Load() + ro.tableVer.Load()
}

// bumpEpoch advances the commit epoch and wakes watch waiters. Every
// committed DoV change funnels through here; waiters woken while a commit
// still holds its shard locks simply block in snapshotCut until the new
// graphs publish.
func (ro *ResourceOrchestrator) bumpEpoch() uint64 {
	e := ro.epoch.Add(1)
	ro.watch.wake()
	return e
}

// bumpTable advances the northbound version for a service-table visibility
// change — a deploy completing or a removed record dropping — without
// counting a DoV commit. The shard vector (and thus the ETag) is unchanged;
// the bump exists so watch streams deliver the refreshed service list.
func (ro *ResourceOrchestrator) bumpTable() {
	ro.tableVer.Add(1)
	ro.watch.wake()
}

// --- LocalOrchestrator -------------------------------------------------------

// ViewVersion returns the current version of the local layer's exported view.
func (lo *LocalOrchestrator) ViewVersion() ViewVersion {
	_, gen := lo.snapshot()
	return ViewVersion{ETag: etagOf(lo.id, []string{"substrate"}, []uint64{gen}), Generation: gen}
}

// VersionedView returns the exported view with the version that names it.
func (lo *LocalOrchestrator) VersionedView(ctx context.Context) (*nffg.NFFG, ViewVersion, error) {
	ver := lo.ViewVersion() // before the view: content ≥ advertised generation
	v, err := lo.View(ctx)
	if err != nil {
		return nil, ViewVersion{}, err
	}
	return v, ver, nil
}

// WaitVersion blocks until the substrate generation exceeds from or ctx ends.
func (lo *LocalOrchestrator) WaitVersion(ctx context.Context, from uint64) (ViewVersion, error) {
	for {
		ch := lo.watch.wait()
		if v := lo.ViewVersion(); v.Generation > from {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return ViewVersion{}, ctx.Err()
		case <-ch:
		}
	}
}

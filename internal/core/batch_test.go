package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// domReq builds a 1-NF chain pinned entirely inside domain i of an n-domain
// line (independent per-domain requests for batch tests).
func domReq(t testing.TB, id string, i, n int) *nffg.NFFG {
	t.Helper()
	left := "sap1"
	if i > 0 {
		left = fmt.Sprintf("b%d", i-1)
	}
	right := "sap2"
	if i < n-1 {
		right = fmt.Sprintf("b%d", i)
	}
	nf := nffg.ID(id + "-nf")
	g := nffg.NewBuilder(id).
		SAP(nffg.ID(left)).SAP(nffg.ID(right)).
		NF(nf, "fw", 2, res(2, 512)).
		Chain(id, 1, 0, nffg.ID(left), nf, nffg.ID(right)).
		MustBuild()
	g.NFs[nf].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", i))
	return g
}

// TestInstallBatchSingleCommit verifies the batch tentpole: K coalesced
// requests are admitted with exactly one DoV generation bump and every one of
// them deploys.
func TestInstallBatchSingleCommit(t *testing.T) {
	const domains = 4
	ro, _ := lineRO(t, domains, 0, nil)
	genBefore := ro.Generation()

	reqs := make([]*nffg.NFFG, domains)
	for i := range reqs {
		reqs[i] = domReq(t, fmt.Sprintf("svc%d", i), i, domains)
	}
	var mu sync.Mutex
	var admitted []int
	out := ro.InstallBatch(context.Background(), reqs, unify.BatchObserver{Admitted: func(i int) {
		mu.Lock()
		admitted = append(admitted, i)
		mu.Unlock()
	}})
	if len(out) != domains {
		t.Fatalf("outcomes: %d", len(out))
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("request %d failed: %v", i, o.Err)
		}
		if o.Receipt == nil || o.Receipt.ServiceID != reqs[i].ID {
			t.Fatalf("request %d receipt: %+v", i, o.Receipt)
		}
		if o.Attempts != 1 {
			t.Fatalf("request %d attempts: %d", i, o.Attempts)
		}
	}
	if len(admitted) != domains {
		t.Fatalf("admitted callbacks: %v", admitted)
	}
	if gen := ro.Generation(); gen != genBefore+1 {
		t.Fatalf("generation moved %d times, want 1", gen-genBefore)
	}
	if got := len(ro.Services()); got != domains {
		t.Fatalf("services: %d", got)
	}
	st := ro.PipelineStats()
	if st.Batches != 1 || st.BatchedRequests != domains || st.Installs != domains {
		t.Fatalf("stats: %+v", st)
	}
	if st.GenConflicts != 0 {
		t.Fatalf("unexpected conflicts: %+v", st)
	}
}

// TestInstallBatchPartialRejection: one unmappable graph in the batch is
// rejected alone; its peers deploy.
func TestInstallBatchPartialRejection(t *testing.T) {
	const domains = 3
	ro, _ := lineRO(t, domains, 0, nil)
	bad := nffg.NewBuilder("bad").
		SAP("sap1").SAP("sap2").
		NF("bad-nf", "quantum", 2, res(1, 64)).
		Chain("bad", 1, 0, "sap1", "bad-nf", "sap2").
		MustBuild()
	reqs := []*nffg.NFFG{
		domReq(t, "ok1", 0, domains),
		bad,
		domReq(t, "ok2", 2, domains),
	}
	out := ro.InstallBatch(context.Background(), reqs, unify.BatchObserver{})
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("good requests failed: %v / %v", out[0].Err, out[2].Err)
	}
	if !errors.Is(out[1].Err, unify.ErrRejected) {
		t.Fatalf("bad request: %v", out[1].Err)
	}
	if got := ro.Services(); len(got) != 2 {
		t.Fatalf("services: %v", got)
	}
}

// TestInstallBatchDuplicateIDs: duplicates within one batch reject
// individually (first wins).
func TestInstallBatchDuplicateIDs(t *testing.T) {
	const domains = 2
	ro, _ := lineRO(t, domains, 0, nil)
	reqs := []*nffg.NFFG{
		domReq(t, "dup", 0, domains),
		domReq(t, "dup", 1, domains),
	}
	out := ro.InstallBatch(context.Background(), reqs, unify.BatchObserver{})
	if out[0].Err != nil {
		t.Fatalf("first dup: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, unify.ErrRejected) {
		t.Fatalf("second dup: %v", out[1].Err)
	}
}

// TestInstallBatchDeployFailureIsolation: a request whose device programming
// fails releases only its own DoV reservation; batch peers stay deployed and
// the failed request's resources are reusable.
func TestInstallBatchDeployFailureIsolation(t *testing.T) {
	const domains = 2
	ro, _ := lineRO(t, domains, 0, map[int]Programmer{
		1: &slowProgrammer{failPfx: "bad"},
	})
	reqs := []*nffg.NFFG{
		domReq(t, "good", 0, domains),
		domReq(t, "bad", 1, domains),
	}
	out := ro.InstallBatch(context.Background(), reqs, unify.BatchObserver{})
	if out[0].Err != nil {
		t.Fatalf("good request failed: %v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Fatal("bad request should fail at deploy")
	}
	if got := ro.Services(); len(got) != 1 || got[0] != "good" {
		t.Fatalf("services: %v", got)
	}
	// The failed request's reservation was released: domain 1's slot admits a
	// fresh install whose NF ID does not trip the failing prefix.
	out2 := ro.InstallBatch(context.Background(), []*nffg.NFFG{domReq(t, "retry", 1, domains)}, unify.BatchObserver{})
	if out2[0].Err != nil {
		t.Fatalf("released capacity not reusable: %v", out2[0].Err)
	}
}

// TestInstallBatchCanceled: a canceled context fails the whole batch with the
// context error and leaves no reservations behind.
func TestInstallBatchCanceled(t *testing.T) {
	const domains = 2
	ro, _ := lineRO(t, domains, 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := ro.InstallBatch(ctx, []*nffg.NFFG{domReq(t, "c1", 0, domains)}, unify.BatchObserver{})
	if !errors.Is(out[0].Err, context.Canceled) {
		t.Fatalf("want context error, got %v", out[0].Err)
	}
	if got := ro.Services(); len(got) != 0 {
		t.Fatalf("leftover services: %v", got)
	}
}

// TestInstallBatchAmortizesConflicts: with C concurrent single-request
// installs every commit invalidates the others' snapshots (conflicts pile
// up); the same C requests as one batch commit once with zero conflicts.
func TestInstallBatchAmortizesConflicts(t *testing.T) {
	const domains = 4
	ro, _ := lineRO(t, domains, time.Millisecond, nil)
	reqs := make([]*nffg.NFFG, domains)
	for i := range reqs {
		reqs[i] = domReq(t, fmt.Sprintf("b%d-svc", i), i, domains)
	}
	before := ro.PipelineStats()
	out := ro.InstallBatch(context.Background(), reqs, unify.BatchObserver{})
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("request %d: %v", i, o.Err)
		}
	}
	st := ro.PipelineStats()
	if got := st.MapAttempts - before.MapAttempts; got != 1 {
		t.Fatalf("batch should map once, mapped %d times", got)
	}
	if st.GenConflicts != before.GenConflicts {
		t.Fatalf("batch should not conflict: %+v", st)
	}
}

package core

import (
	"sort"
	"sync"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// ShardKeyFunc maps an attached child domain to the DoV shard that holds its
// exported view. Domains sharing a key share one copy-on-write graph and one
// generation counter; installs whose shard sets are disjoint commit fully
// concurrently.
type ShardKeyFunc func(domainID string) string

// ShardPerDomain gives every child domain its own DoV shard — the default:
// the paper's premise is that most requests touch few domains, so per-domain
// shards make disjoint installs contention-free.
func ShardPerDomain(domainID string) string { return domainID }

// SingleShard collapses the DoV into one shard — the degenerate configuration
// equivalent to the pre-sharding single generation counter (useful as a
// baseline and for tiny deployments).
func SingleShard(string) string { return "dov" }

// shard is one partition of the DoV: an immutable copy-on-write graph guarded
// by its own mutex and generation counter. All counter fields are guarded by
// mu; the graph pointer is swapped wholesale on commit.
type shard struct {
	key string

	mu          sync.Mutex
	dov         *nffg.NFFG // immutable snapshot; replaced wholesale on commit
	gen         uint64     // bumped on every committed change of this shard
	commits     uint64     // graph swaps (attach merges, install commits, releases)
	conflicts   uint64     // commit validations lost on this shard's generation
	multi       uint64     // commits that spanned this shard plus at least one more
	journalRecs uint64     // write-ahead records appended under this shard's lock
	restoredGen uint64     // generation recovered from the journal at startup
}

// ShardStats is one DoV shard's observable state: its generation, how often
// it committed, how often optimistic commits lost on it, and how many of its
// commits were multi-shard (ordered two-phase) commits. Gen == Commits is an
// invariant: every generation bump is a counted commit.
type ShardStats struct {
	// Shard is the shard key (the domain ID under ShardPerDomain).
	Shard string `json:"shard"`
	// Domains lists the child layers whose views this shard holds.
	Domains []string `json:"domains"`
	// Gen is the shard's generation (committed changes since start).
	Gen uint64 `json:"gen"`
	// Commits counts graph swaps: attach merges, install commits, releases.
	Commits uint64 `json:"commits"`
	// Conflicts counts optimistic commits lost to this shard's generation.
	Conflicts uint64 `json:"conflicts"`
	// MultiShardCommits counts commits that locked this shard together with
	// at least one sibling (the ordered two-phase path).
	MultiShardCommits uint64 `json:"multi_shard_commits"`
	// JournalRecords counts write-ahead records appended to this shard's log
	// under its lock (attach/commit/release; zero when journaling is off).
	JournalRecords uint64 `json:"journal_records"`
	// RestoredGen is the generation the shard was recovered at (zero for
	// shards born in this process): Gen - RestoredGen commits happened since
	// the last restart.
	RestoredGen uint64 `json:"restored_gen"`
}

// shardDirectory is the registration-time shard topology, guarded by
// ResourceOrchestrator.mu and rebuilt copy-on-write so planners can read a
// snapshot lock-free.
type shardDirectory struct {
	shards     map[string]*shard
	keys       []string            // sorted shard keys
	childShard map[string]string   // child layer ID -> shard key
	domains    map[string][]string // shard key -> sorted child layer IDs
}

func newShardDirectory() *shardDirectory {
	return &shardDirectory{
		shards:     map[string]*shard{},
		childShard: map[string]string{},
		domains:    map[string][]string{},
	}
}

// clone returns a deep copy of the directory metadata sharing the shard
// structs themselves (which carry their own locks).
func (d *shardDirectory) clone() *shardDirectory {
	c := newShardDirectory()
	for k, s := range d.shards {
		c.shards[k] = s
	}
	c.keys = append([]string(nil), d.keys...)
	for k, v := range d.childShard {
		c.childShard[k] = v
	}
	for k, v := range d.domains {
		c.domains[k] = append([]string(nil), v...)
	}
	return c
}

// ordered returns the shards for the given keys in key order, skipping keys
// the directory does not know.
func (d *shardDirectory) ordered(keys []string) []*shard {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	out := make([]*shard, 0, len(sorted))
	for _, k := range sorted {
		if s, ok := d.shards[k]; ok {
			out = append(out, s)
		}
	}
	return out
}

// lockAll acquires the shards' mutexes in slice (key) order — the global lock
// order that makes multi-shard commits, snapshots and releases deadlock-free.
// The shards slice must already be key-ordered (see ordered).
func lockAll(shs []*shard) {
	for _, s := range shs {
		s.mu.Lock()
	}
}

func unlockAll(shs []*shard) {
	for i := len(shs) - 1; i >= 0; i-- {
		shs[i].mu.Unlock()
	}
}

// snapshotCut reads a consistent (graph, generation) cut across the given
// key-ordered shards: all locks are held simultaneously, so a multi-shard
// commit can never be observed half-applied.
func snapshotCut(shs []*shard) (graphs []*nffg.NFFG, gens []uint64) {
	graphs = make([]*nffg.NFFG, len(shs))
	gens = make([]uint64, len(shs))
	lockAll(shs)
	for i, s := range shs {
		graphs[i] = s.dov
		gens[i] = s.gen
	}
	unlockAll(shs)
	return graphs, gens
}

// shardGroup is one connected component of overlapping shard sets within a
// batch: the request indices it carries and the union of their shard sets
// (nil when the group is global).
type shardGroup struct {
	idx  []int
	keys []string // nil = all shards
}

// groupByOverlap partitions request indices into connected components of
// overlapping shard sets via unify.GroupShardSets (the one union-find shared
// with the admission queue's lane dispatch). Indices with a nil set ("touches
// everything") fold the whole batch into one global group.
func groupByOverlap(indices []int, sets [][]string) []shardGroup {
	compact := make([][]string, len(indices))
	for j, i := range indices {
		compact[j] = sets[i]
	}
	groups, keys := unify.GroupShardSets(compact)
	out := make([]shardGroup, len(groups))
	for gi, g := range groups {
		for _, j := range g {
			out[gi].idx = append(out[gi].idx, indices[j])
		}
		out[gi].keys = keys[gi]
	}
	return out
}

package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// TestShardSetEstimation pins the shard-set estimator: single-domain chains
// narrow to one shard, border SAPs widen to their neighbors, unpinned NFs
// narrow to their SAP anchors via the reverse index, and unknown endpoints
// fall back to the global (nil) set.
func TestShardSetEstimation(t *testing.T) {
	ro, _ := lineRO(t, 4, 0, nil)

	// Pinned chain on d1's border SAPs: the SAPs stitch d0/d1 and d1/d2.
	req := chainReq(t, "est1", "b0", "b1", "fw")
	req.NFs["est1-nf"].Host = "bisbis@d1"
	if got, want := ro.ShardSet(req), []string{"d0", "d1", "d2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("border chain: %v, want %v", got, want)
	}

	// Outer SAP + pinned NF: narrows to the owning shards only.
	req2 := chainReq(t, "est2", "sap1", "b0", "fw")
	req2.NFs["est2-nf"].Host = "bisbis@d0"
	if got, want := ro.ShardSet(req2), []string{"d0", "d1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("outer chain: %v, want %v", got, want)
	}

	// Unpinned NF: the reverse index narrows it to the SAP anchors (sap1 in
	// d0, sap2 in d3); a plan that needs the transit shards escalates.
	req3 := chainReq(t, "est3", "sap1", "sap2", "fw")
	if got, want := ro.ShardSet(req3), []string{"d0", "d3"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unpinned: %v, want %v", got, want)
	}

	// Unknown SAP: cannot be narrowed (the plan rejects it with a real error).
	req4 := chainReq(t, "est4", "nowhere", "b0", "fw")
	req4.NFs["est4-nf"].Host = "bisbis@d0"
	if got := ro.ShardSet(req4); got != nil {
		t.Fatalf("unknown SAP: %v, want nil", got)
	}
}

// TestShardSetConservativeEstimate pins the pre-reverse-index baseline
// (Config.ConservativeShardEstimate): any unpinned NF makes the set global.
func TestShardSetConservativeEstimate(t *testing.T) {
	ro, _ := lineROWith(t, 4, Config{ID: "ro", ConservativeShardEstimate: true})
	req := chainReq(t, "cons", "sap1", "sap2", "fw")
	if got := ro.ShardSet(req); got != nil {
		t.Fatalf("conservative unpinned: %v, want nil", got)
	}
	// Pinned requests still narrow — the baseline only changes unpinned NFs.
	req2 := chainReq(t, "cons2", "sap1", "b0", "fw")
	req2.NFs["cons2-nf"].Host = "bisbis@d0"
	if got, want := ro.ShardSet(req2), []string{"d0", "d1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("conservative pinned: %v, want %v", got, want)
	}
}

// TestUnpinnedNarrowedEscalation: an unpinned chain whose SAP anchors miss
// the transit shards plans on the narrowed cut, fails there (no path), and
// must escalate to a full-DoV plan and deploy.
func TestUnpinnedNarrowedEscalation(t *testing.T) {
	ro, _ := lineRO(t, 4, 0, nil)
	req := chainReq(t, "unp", "sap1", "sap2", "fw")
	if set := ro.ShardSet(req); len(set) != 2 {
		t.Fatalf("estimate should narrow to the SAP anchors: %v", set)
	}
	if _, err := ro.Install(context.Background(), req); err != nil {
		t.Fatalf("escalated unpinned install failed: %v", err)
	}
	if st := ro.PipelineStats(); st.Escalations == 0 {
		t.Fatalf("install did not escalate: %+v", st)
	}
	if err := ro.Remove(context.Background(), "unp"); err != nil {
		t.Fatal(err)
	}
}

// TestGroupByOverlap pins the union-find partitioning: disjoint sets stay
// separate groups, transitive overlap merges, a global (nil) set folds
// everything into one group.
func TestGroupByOverlap(t *testing.T) {
	sets := [][]string{
		0: {"a"},
		1: {"b"},
		2: {"a", "c"},
		3: {"d"},
	}
	groups := groupByOverlap([]int{0, 1, 2, 3}, sets)
	if len(groups) != 3 {
		t.Fatalf("groups: %+v", groups)
	}
	byFirst := map[int]shardGroup{}
	for _, g := range groups {
		byFirst[g.idx[0]] = g
	}
	if g := byFirst[0]; !reflect.DeepEqual(g.idx, []int{0, 2}) || !reflect.DeepEqual(g.keys, []string{"a", "c"}) {
		t.Fatalf("merged group: %+v", g)
	}
	if g := byFirst[1]; !reflect.DeepEqual(g.keys, []string{"b"}) {
		t.Fatalf("b group: %+v", g)
	}

	// One global request collapses the partition.
	sets = append(sets, nil)
	groups = groupByOverlap([]int{0, 1, 2, 3, 4}, sets)
	if len(groups) != 1 || groups[0].keys != nil || len(groups[0].idx) != 5 {
		t.Fatalf("global fold: %+v", groups)
	}
}

// TestSingleShardDegenerate: with ShardKey SingleShard the orchestrator runs
// exactly like the pre-sharding pipeline — one shard, one generation counter,
// no multi-shard commits.
func TestSingleShardDegenerate(t *testing.T) {
	const domains = 3
	var los []*LocalOrchestrator
	ro := NewResourceOrchestrator(Config{ID: "ro", ShardKey: SingleShard})
	for i := 0; i < domains; i++ {
		name := fmt.Sprintf("d%d", i)
		left := nffg.ID(fmt.Sprintf("b%d", i-1))
		if i == 0 {
			left = "sap1"
		}
		right := nffg.ID(fmt.Sprintf("b%d", i))
		if i == domains-1 {
			right = "sap2"
		}
		sub := nffg.NewBuilder(name).
			BiSBiS(nffg.ID(name+"-n"), name, 4, res(16, 8192), "fw").
			SAP(left).SAP(right).
			Link("l", left, "1", nffg.ID(name+"-n"), "1", 1000, 1).
			Link("r", nffg.ID(name+"-n"), "2", right, "1", 1000, 1).
			MustBuild()
		lo, err := NewLocalOrchestrator(LocalConfig{ID: name, Substrate: sub})
		if err != nil {
			t.Fatal(err)
		}
		if err := ro.Attach(context.Background(), lo); err != nil {
			t.Fatal(err)
		}
		los = append(los, lo)
	}
	_ = los
	if st := ro.ShardStats(); len(st) != 1 || st[0].Shard != "dov" || len(st[0].Domains) != domains {
		t.Fatalf("degenerate shards: %+v", st)
	}
	req := chainReq(t, "svc", "sap1", "sap2", "fw")
	if _, err := ro.Install(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if err := ro.Remove(context.Background(), "svc"); err != nil {
		t.Fatal(err)
	}
	st := ro.PipelineStats()
	if st.MultiShardCommits != 0 {
		t.Fatalf("single shard took a multi-shard commit: %+v", st)
	}
	for _, sh := range ro.ShardStats() {
		if sh.Gen != sh.Commits {
			t.Fatalf("gen invariant: %+v", sh)
		}
	}
}

// TestScopedPlanEscalation: a request whose estimated shard set misses a
// transit shard (the path must detour through it) fails its scoped plan and
// must be escalated to a full-DoV plan — and succeed — instead of being
// rejected.
func TestScopedPlanEscalation(t *testing.T) {
	ro, los := lineRO(t, 4, 0, nil)
	// sap1 lives in d0, the NF is pinned into d2: the estimate is {d0,d2,d3}
	// (b2 stitches d2/d3) but the path must transit d1.
	req := chainReq(t, "esc", "sap1", "b2", "fw")
	req.NFs["esc-nf"].Host = "bisbis@d2"
	if set := ro.ShardSet(req); len(set) == 0 || len(set) >= 4 {
		t.Fatalf("estimate should be narrow but non-empty: %v", set)
	}
	if _, err := ro.Install(context.Background(), req); err != nil {
		t.Fatalf("escalated install failed: %v", err)
	}
	if st := ro.PipelineStats(); st.Escalations == 0 {
		t.Fatalf("install did not escalate: %+v", st)
	}
	// The transit shard d1 carried flowrules even though the estimate missed
	// it: the commit touched it.
	found := false
	for _, lo := range los {
		if len(lo.Services()) > 0 && lo.ID() == "d1" {
			found = true
		}
	}
	if !found {
		t.Fatal("transit domain d1 received no sub-service")
	}
	if err := ro.Remove(context.Background(), "esc"); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardNFIDCollision: NF IDs stay globally unique even when two
// services land on disjoint shards — the reservation table rejects the
// second request exactly like the shared-graph ApplyTo used to.
func TestCrossShardNFIDCollision(t *testing.T) {
	ro, _ := lineRO(t, 2, 0, nil)
	mk := func(svc string, dom int) *nffg.NFFG {
		left := "sap1"
		if dom > 0 {
			left = "b0"
		}
		right := "b0"
		if dom > 0 {
			right = "sap2"
		}
		g := nffg.NewBuilder(svc).
			SAP(nffg.ID(left)).SAP(nffg.ID(right)).
			NF("shared-nf", "fw", 2, res(2, 512)).
			Chain(svc, 1, 0, nffg.ID(left), "shared-nf", nffg.ID(right)).
			MustBuild()
		g.NFs["shared-nf"].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", dom))
		return g
	}
	if _, err := ro.Install(context.Background(), mk("svcA", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Install(context.Background(), mk("svcB", 1)); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("colliding NF id must reject: %v", err)
	}
	// Removing the owner frees the identifier.
	if err := ro.Remove(context.Background(), "svcA"); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Install(context.Background(), mk("svcB", 1)); err != nil {
		t.Fatalf("freed NF id must be reusable: %v", err)
	}
}

// TestAttachInfraCollisionAcrossShards: infra IDs must stay globally unique
// even though every shard merges its own graph — the owner map is the
// cross-shard authority.
func TestAttachInfraCollisionAcrossShards(t *testing.T) {
	ro := NewResourceOrchestrator(Config{ID: "ro"})
	mk := func(name string) *LocalOrchestrator {
		sub := nffg.NewBuilder(name).
			BiSBiS("same-node", name, 4, res(8, 4096), "fw").
			SAP(nffg.ID(name+"-sap")).
			Link("u", nffg.ID(name+"-sap"), "1", "same-node", "1", 100, 1).
			MustBuild()
		lo, err := NewLocalOrchestrator(LocalConfig{
			ID: name, Substrate: sub,
			// Transparent export keeps the colliding internal node ID visible.
			Virtualizer: Transparent{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return lo
	}
	if err := ro.Attach(context.Background(), mk("a")); err != nil {
		t.Fatal(err)
	}
	if err := ro.Attach(context.Background(), mk("b")); err == nil {
		t.Fatal("colliding infra IDs across shards must fail to attach")
	}
	// The failed attach left no residue: the child is not registered.
	if got := ro.Children(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("children after failed attach: %v", got)
	}
}

// TestDisjointBatchPartition: an InstallBatch whose requests narrow to
// disjoint shards commits once per shard group (not once globally), and every
// request deploys.
func TestDisjointBatchPartition(t *testing.T) {
	const domains = 3
	ro, _ := meshRO(t, domains, 1)
	before := ro.PipelineStats()
	reqs := make([]*nffg.NFFG, domains)
	for i := range reqs {
		reqs[i] = slotChain(t, fmt.Sprintf("p%d", i), i, 0)
	}
	out := ro.InstallBatch(context.Background(), reqs, unify.BatchObserver{})
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("request %d: %v", i, o.Err)
		}
	}
	st := ro.PipelineStats()
	if got := st.Batches - before.Batches; got != domains {
		t.Fatalf("disjoint batch should commit %d groups, committed %d", domains, got)
	}
	if st.GenConflicts != before.GenConflicts {
		t.Fatalf("disjoint groups conflicted: %+v", st)
	}
	if st.MultiShardCommits != before.MultiShardCommits {
		t.Fatalf("disjoint groups took multi-shard commits: %+v", st)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/embed"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/topo"
	"github.com/unify-repro/escape/internal/unify"
)

// MaxMapAttempts bounds the optimistic snapshot→map→commit retries of an
// Install: each retry re-reads the DoV after a concurrent commit bumped the
// generation. Exhaustion returns unify.ErrBusy — the request was never
// rejected on its merits, only crowded out.
const MaxMapAttempts = 8

// ResourceOrchestrator is the manager of the paper's architecture: it merges
// the virtualization views of its southbound layers into a global resource
// view (the DoV — domain of views), maps incoming requests onto it, and
// splits the result into sub-requests for each child. It implements
// unify.Layer northbound, so orchestrators stack recursively.
//
// Concurrency model (snapshot → map → commit): the DoV is treated as an
// immutable value guarded by a generation counter. Installs snapshot the
// current (dov, gen) pair, run the CPU-bound embedding and request splitting
// against the snapshot without holding any lock, and re-validate the
// generation in a short critical section when swapping the new DoV in. A
// concurrent commit bumps the generation and forces the loser to re-map on a
// fresh snapshot (bounded by MaxMapAttempts). Child deployments then fan out
// in parallel goroutines with first-error cancellation, so install latency is
// the slowest child rather than the sum of all children.
type ResourceOrchestrator struct {
	id     string
	virt   Virtualizer
	mapper *embed.Mapper
	reg    *domain.Registry

	mu       sync.Mutex
	dov      *nffg.NFFG         // immutable snapshot; replaced wholesale on commit
	gen      uint64             // bumped on every committed DoV change
	owner    map[nffg.ID]string // immutable snapshot: DoV infra -> child ID that exported it
	services map[string]*serviceRecord

	// Contention counters of the mapping pipeline (see PipelineStats).
	stats struct {
		installs, mapAttempts, genConflicts, busy, batches, batchedReqs atomic.Uint64
	}
}

// PipelineStats are cumulative counters of the snapshot→map→commit pipeline,
// exposed for observability (internal/monitor renders them): how often
// installs re-map, how often commits collide, and how much batching
// amortizes.
type PipelineStats struct {
	// Installs counts successfully deployed requests.
	Installs uint64
	// MapAttempts counts snapshot→map→commit cycles (≥1 per batch).
	MapAttempts uint64
	// GenConflicts counts commits lost to a concurrent generation bump.
	GenConflicts uint64
	// Busy counts requests that exhausted MaxMapAttempts (unify.ErrBusy).
	Busy uint64
	// Batches counts committed admission batches; BatchedRequests the
	// requests they carried (BatchedRequests/Batches = mean batch size).
	Batches         uint64
	BatchedRequests uint64
}

// serviceState tracks the lifecycle of a serviceRecord so concurrent
// operations on the same ID exclude each other without holding the
// orchestrator lock across actuation.
type serviceState int

const (
	// statePending: install in flight; the ID is reserved and (after commit)
	// DoV resources are held, but children may not be programmed yet.
	statePending serviceState = iota
	// stateReady: fully deployed.
	stateReady
	// stateRemoving: teardown in flight.
	stateRemoving
)

type serviceRecord struct {
	state   serviceState
	mapping *embed.Mapping
	// children maps child ID -> sub-service IDs installed there.
	children map[string][]string
	receipt  *unify.Receipt
}

// Config configures a ResourceOrchestrator.
type Config struct {
	// ID names the orchestrator (and its layer).
	ID string
	// Virtualizer selects the northbound view policy (default DomainBiSBiS).
	Virtualizer Virtualizer
	// Mapper selects the embedding algorithm (default embed.NewDefault).
	Mapper *embed.Mapper
}

// NewResourceOrchestrator creates an orchestrator with no children attached.
func NewResourceOrchestrator(cfg Config) *ResourceOrchestrator {
	if cfg.Virtualizer == nil {
		cfg.Virtualizer = DomainBiSBiS{}
	}
	if cfg.Mapper == nil {
		cfg.Mapper = embed.NewDefault()
	}
	if cfg.ID == "" {
		cfg.ID = "ro"
	}
	return &ResourceOrchestrator{
		id:       cfg.ID,
		virt:     cfg.Virtualizer,
		mapper:   cfg.Mapper,
		reg:      domain.NewRegistry(),
		services: map[string]*serviceRecord{},
	}
}

// ID implements unify.Layer.
func (ro *ResourceOrchestrator) ID() string { return ro.id }

// Attach registers a southbound layer (an infrastructure domain adapter or
// another orchestrator) and folds its view into the DoV. Children exporting
// the same SAP IDs are stitched at those border SAPs. The merge runs on a
// copy that is swapped in only on success, so a failed Attach can never leave
// a partially-merged DoV behind. ctx bounds the child view fetch (which may
// be a remote call).
func (ro *ResourceOrchestrator) Attach(ctx context.Context, d domain.Domain) error {
	if err := ro.reg.Register(d); err != nil {
		return err
	}
	view, err := d.View(ctx)
	if err != nil {
		_ = ro.reg.Deregister(d.ID())
		return fmt.Errorf("core: attach %s: %w", d.ID(), err)
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	next := nffg.New(ro.id + "-dov")
	if ro.dov != nil {
		next = ro.dov.Copy()
	}
	if err := next.Merge(view); err != nil {
		_ = ro.reg.Deregister(d.ID())
		return fmt.Errorf("core: merge view of %s: %w", d.ID(), err)
	}
	owner := make(map[nffg.ID]string, len(ro.owner)+len(view.Infras))
	for k, v := range ro.owner {
		owner[k] = v
	}
	for _, infra := range view.InfraIDs() {
		owner[infra] = d.ID()
	}
	ro.dov = next
	ro.owner = owner
	ro.gen++
	return nil
}

// Children lists attached child layer IDs.
func (ro *ResourceOrchestrator) Children() []string { return ro.reg.Names() }

// snapshot returns the current immutable (dov, owner, gen) triple.
func (ro *ResourceOrchestrator) snapshot() (*nffg.NFFG, map[nffg.ID]string, uint64) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.dov, ro.owner, ro.gen
}

// Generation returns the current DoV generation (exported for tests and
// metrics: the number of committed DoV changes since start).
func (ro *ResourceOrchestrator) Generation() uint64 {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.gen
}

// PipelineStats returns the cumulative mapping-pipeline counters.
func (ro *ResourceOrchestrator) PipelineStats() PipelineStats {
	return PipelineStats{
		Installs:        ro.stats.installs.Load(),
		MapAttempts:     ro.stats.mapAttempts.Load(),
		GenConflicts:    ro.stats.genConflicts.Load(),
		Busy:            ro.stats.busy.Load(),
		Batches:         ro.stats.batches.Load(),
		BatchedRequests: ro.stats.batchedReqs.Load(),
	}
}

// DoV returns a copy of the current global resource view (for inspection).
func (ro *ResourceOrchestrator) DoV() *nffg.NFFG {
	snap, _, _ := ro.snapshot()
	if snap == nil {
		return nffg.New(ro.id + "-dov")
	}
	return snap.Copy()
}

// View implements unify.Layer: the northbound virtualization of the DoV.
// The view derives from an immutable snapshot, so the computation runs
// without holding the orchestrator lock.
func (ro *ResourceOrchestrator) View(ctx context.Context) (*nffg.NFFG, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap, _, _ := ro.snapshot()
	if snap == nil {
		return nil, ErrEmptyView
	}
	return ro.virt.View(snap)
}

// plan runs the CPU-bound embedding of one request against an immutable DoV
// snapshot: view-pin expansion and scoped mapping. It holds no locks and
// mutates no shared state; realizing the mapping on a working DoV (and
// splitting it per child) is the caller's business.
func (ro *ResourceOrchestrator) plan(snap *nffg.NFFG, req *nffg.NFFG) (*embed.Mapping, error) {
	// Translate view-node pins into DoV scope constraints.
	work := req.Copy()
	scope := map[nffg.ID][]nffg.ID{}
	for _, id := range work.NFIDs() {
		nf := work.NFs[id]
		if nf.Host == "" {
			continue
		}
		if _, direct := snap.Infras[nf.Host]; direct {
			continue // already a DoV node (transparent views)
		}
		expanded := ro.virt.Scope(snap, nf.Host)
		if len(expanded) == 0 {
			return nil, fmt.Errorf("%w: NF %s pinned to unknown view node %s", unify.ErrRejected, id, nf.Host)
		}
		if len(expanded) == 1 {
			nf.Host = expanded[0]
		} else {
			nf.Host = ""
			scope[id] = expanded
		}
	}
	mapping, err := ro.mapper.MapScoped(snap, work, scope)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	return mapping, nil
}

// Install implements unify.Layer: a single-request admission batch (see
// InstallBatch for the snapshot→map→commit pipeline).
func (ro *ResourceOrchestrator) Install(ctx context.Context, req *nffg.NFFG) (*unify.Receipt, error) {
	out := ro.InstallBatch(ctx, []*nffg.NFFG{req}, unify.BatchObserver{})
	return out[0].Receipt, out[0].Err
}

// InstallBatch implements unify.BatchInstaller: the whole batch is planned
// against ONE DoV snapshot — each request over the residual capacity left by
// its predecessors — and committed with a single generation bump, so N
// concurrently-admitted requests cost one commit instead of N racing ones.
// Requests fail individually: a graph that cannot be embedded is rejected
// alone while the rest of the batch proceeds. After the commit the admitted
// requests fan out in parallel (each inheriting the per-child fan-out of
// deployChildren); a failed deployment releases only its own reservation.
func (ro *ResourceOrchestrator) InstallBatch(ctx context.Context, reqs []*nffg.NFFG, obs unify.BatchObserver) []unify.BatchOutcome {
	out := make([]unify.BatchOutcome, len(reqs))
	attempts := 0
	// conclude finalizes one outcome and fires obs.Done exactly once. The
	// deploy goroutines below call it for their own index only; finish is
	// the single exit point and sweeps up everything not yet concluded.
	notified := make([]bool, len(reqs))
	conclude := func(i int) {
		if notified[i] {
			return
		}
		notified[i] = true
		out[i].Attempts = attempts
		if obs.Done != nil {
			obs.Done(i, out[i])
		}
	}
	finish := func() []unify.BatchOutcome {
		for i := range out {
			conclude(i)
		}
		return out
	}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return finish()
	}

	// Reserve the request IDs so concurrent duplicate installs (and
	// duplicates within the batch) reject immediately and individually.
	records := make([]*serviceRecord, len(reqs))
	live := make([]bool, len(reqs))
	ro.mu.Lock()
	if ro.dov == nil {
		ro.mu.Unlock()
		for i := range out {
			out[i].Err = fmt.Errorf("%w: no domains attached", unify.ErrRejected)
		}
		return finish()
	}
	for i, req := range reqs {
		if req == nil || req.ID == "" {
			out[i].Err = fmt.Errorf("%w: request needs an ID", unify.ErrRejected)
			continue
		}
		if _, dup := ro.services[req.ID]; dup {
			out[i].Err = fmt.Errorf("%w: service %s already installed", unify.ErrRejected, req.ID)
			continue
		}
		records[i] = &serviceRecord{state: statePending, children: map[string][]string{}}
		ro.services[req.ID] = records[i]
		live[i] = true
	}
	ro.mu.Unlock()

	// abort drops request i's reservation. The per-request deploy goroutines
	// below may call it concurrently: each touches only its own index.
	abort := func(i int, err error) {
		ro.mu.Lock()
		delete(ro.services, reqs[i].ID)
		ro.mu.Unlock()
		live[i] = false
		out[i].Err = err
	}
	abortAll := func(err error) []unify.BatchOutcome {
		for i := range reqs {
			if live[i] {
				abort(i, err)
			}
		}
		return finish()
	}

	// Optimistic batch loop: plan every live request against one snapshot,
	// then swap the combined DoV in iff no concurrent commit moved the
	// generation; otherwise re-plan the whole batch, at most MaxMapAttempts
	// times.
	type plannedReq struct {
		mapping *embed.Mapping
		subs    map[string]*nffg.NFFG
	}
	plans := make([]*plannedReq, len(reqs))
	planErrs := make([]error, len(reqs))
	committed := false
	var lastErr error
	for attempts < MaxMapAttempts {
		attempts++
		if err := ctx.Err(); err != nil {
			return abortAll(err)
		}
		ro.stats.mapAttempts.Add(1)
		snap, owner, snapGen := ro.snapshot()
		// The whole batch shares ONE working copy of the snapshot: each
		// accepted mapping is realized on it in place (embed.ApplyTo), so
		// admitting N requests costs one graph copy instead of N.
		cur := snap
		var accepted []*embed.Mapping
		mappable := 0
		rebuild := func() {
			// An ApplyTo failed partway and may have left cur inconsistent:
			// rebuild it by replaying the accepted mappings on a fresh copy
			// (deterministic — they applied cleanly before).
			cur = snap.Copy()
			for _, mp := range accepted {
				if rerr := embed.ApplyTo(cur, mp); rerr != nil {
					log.Printf("core %s: batch replay inconsistency: %v", ro.id, rerr)
				}
			}
		}
		for i, req := range reqs {
			if !live[i] {
				continue
			}
			plans[i], planErrs[i] = nil, nil
			mapping, err := ro.plan(cur, req)
			if err != nil {
				planErrs[i] = err
				continue
			}
			if cur == snap {
				cur = snap.Copy()
			}
			if err := embed.ApplyTo(cur, mapping); err != nil {
				planErrs[i] = fmt.Errorf("%w: %v", unify.ErrRejected, err)
				rebuild()
				continue
			}
			subs, err := ro.split(snap, owner, req.ID, mapping)
			if err != nil {
				planErrs[i] = fmt.Errorf("%w: %v", unify.ErrRejected, err)
				// The mapping applied cleanly, so Release is its exact inverse.
				if rerr := embed.Release(cur, mapping); rerr != nil {
					log.Printf("core %s: releasing unsplittable mapping: %v", ro.id, rerr)
					rebuild()
				}
				continue
			}
			plans[i] = &plannedReq{mapping: mapping, subs: subs}
			accepted = append(accepted, mapping)
			mappable++
		}
		if mappable == 0 {
			// Nothing mappable on this snapshot. If a concurrent commit moved
			// the DoV meanwhile the failures may be stale (e.g. a Remove just
			// freed the conflicting resources) — retry fresh; otherwise they
			// are final.
			if _, _, gen := ro.snapshot(); gen != snapGen {
				lastErr = fmt.Errorf("%w: DoV generation advanced during mapping", unify.ErrBusy)
				continue
			}
			for i := range reqs {
				if live[i] {
					abort(i, planErrs[i])
				}
			}
			return finish()
		}
		ro.mu.Lock()
		if ro.gen == snapGen {
			ro.dov = cur
			ro.gen++
			ro.mu.Unlock()
			committed = true
			break
		}
		ro.mu.Unlock()
		// Lost the commit race; loop re-plans against the new generation.
		ro.stats.genConflicts.Add(1)
		lastErr = fmt.Errorf("%w: DoV generation advanced during mapping", unify.ErrBusy)
	}
	if !committed {
		for i := range reqs {
			if !live[i] {
				continue
			}
			ro.stats.busy.Add(1)
			// Keep the request's own last rejection when it has one: a graph
			// that kept failing to map while the generation churned is more
			// usefully reported than the generic lost-race error.
			cause := lastErr
			if planErrs[i] != nil {
				cause = planErrs[i]
			}
			abort(i, fmt.Errorf("%w: gave up after %d mapping attempts (last: %v)", unify.ErrBusy, MaxMapAttempts, cause))
		}
		return finish()
	}

	// The commit landed: batch-local rejections are final; everyone else now
	// holds a DoV reservation and must either deploy or release it.
	admittedCount := 0
	for i := range reqs {
		if !live[i] {
			continue
		}
		if plans[i] == nil {
			abort(i, planErrs[i])
			continue
		}
		admittedCount++
	}
	ro.stats.batches.Add(1)
	ro.stats.batchedReqs.Add(uint64(admittedCount))

	var wg sync.WaitGroup
	for i := range reqs {
		if !live[i] {
			continue
		}
		if obs.Admitted != nil {
			obs.Admitted(i)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer conclude(i)
			p := plans[i]
			children := sortedKeys(p.subs)
			receipts, err := ro.deployChildren(ctx, children, p.subs)
			if err != nil {
				if rerr := ro.releaseDoV(p.mapping); rerr != nil {
					log.Printf("core %s: releasing aborted install %s: %v", ro.id, reqs[i].ID, rerr)
				}
				abort(i, err)
				return
			}
			receipt := buildReceipt(reqs[i].ID, p.mapping, children, receipts)
			ro.mu.Lock()
			rec := records[i]
			rec.mapping = p.mapping
			for _, childID := range children {
				rec.children[childID] = append(rec.children[childID], p.subs[childID].ID)
			}
			rec.receipt = receipt
			rec.state = stateReady
			ro.mu.Unlock()
			out[i].Receipt = receipt
			ro.stats.installs.Add(1)
		}(i)
	}
	wg.Wait()
	return finish()
}

// mappingReceipt turns a mapping into the northbound deployment record
// (placements, hop paths, applied decompositions).
func mappingReceipt(serviceID string, mapping *embed.Mapping) *unify.Receipt {
	receipt := &unify.Receipt{
		ServiceID:      serviceID,
		Placements:     map[nffg.ID]nffg.ID{},
		HopPaths:       map[string][]string{},
		Decompositions: mapping.Applied,
	}
	for nf, host := range mapping.NFHost {
		receipt.Placements[nf] = host
	}
	for hid, p := range mapping.Paths {
		var nodes []string
		for _, n := range p.Nodes {
			nodes = append(nodes, string(n))
		}
		receipt.HopPaths[hid] = nodes
	}
	return receipt
}

// buildReceipt assembles the recursive deployment record of one request.
func buildReceipt(serviceID string, mapping *embed.Mapping, children []string, childReceipts []*unify.Receipt) *unify.Receipt {
	receipt := mappingReceipt(serviceID, mapping)
	receipt.Children = map[string]*unify.Receipt{}
	for i, childID := range children {
		receipt.Children[childID] = childReceipts[i]
	}
	return receipt
}

// deployChildren installs the per-child sub-requests in parallel goroutines.
// The first failure cancels the context handed to the siblings, already
// deployed children are rolled back, and the first (root-cause) error is
// returned.
func (ro *ResourceOrchestrator) deployChildren(ctx context.Context, children []string, subs map[string]*nffg.NFFG) ([]*unify.Receipt, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	receipts := make([]*unify.Receipt, len(children))
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, childID := range children {
		wg.Add(1)
		go func(i int, childID string) {
			defer wg.Done()
			d, err := ro.reg.Get(childID)
			if err == nil {
				receipts[i], err = d.Install(cctx, subs[childID])
			}
			if err != nil {
				errs[i] = err
				cancel() // first error cancels the sibling deploys
			}
		}(i, childID)
	}
	wg.Wait()
	firstErr := pickRootCause(children, errs)
	if firstErr == nil {
		return receipts, nil
	}
	// Roll back whatever landed, in parallel, detached from the canceled
	// deploy context so teardown still runs after a northbound cancellation.
	rctx := context.WithoutCancel(ctx)
	var rb sync.WaitGroup
	for i, childID := range children {
		if receipts[i] == nil || errs[i] != nil {
			continue
		}
		rb.Add(1)
		go func(childID, subID string) {
			defer rb.Done()
			d, err := ro.reg.Get(childID)
			if err != nil {
				log.Printf("core %s: rollback of %s: %v", ro.id, subID, err)
				return
			}
			if rerr := d.Remove(rctx, subID); rerr != nil {
				log.Printf("core %s: rollback of %s on %s failed: %v", ro.id, subID, childID, rerr)
			}
		}(childID, subs[childID].ID)
	}
	rb.Wait()
	return nil, firstErr
}

// pickRootCause selects the error to surface from a fan-out: the first
// non-cancellation child error (the root cause) if any, wrapped in
// ErrRejected. A purely-canceled fan-out keeps the context error identity
// (errors.Is(err, context.Canceled) holds) instead of claiming rejection.
func pickRootCause(children []string, errs []error) error {
	var first error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = fmt.Errorf("core: child %s canceled: %w", children[i], err)
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("%w: child %s rejected: %v", unify.ErrRejected, children[i], err)
		}
	}
	return first
}

// releaseDoV returns a mapping's resources to the DoV (copy-on-write: the
// release runs on a copy that replaces the current snapshot).
func (ro *ResourceOrchestrator) releaseDoV(mp *embed.Mapping) error {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	next := ro.dov.Copy()
	err := embed.Release(next, mp)
	if err == nil {
		ro.dov = next
	}
	// Bump the generation either way so optimistic mappers re-read.
	ro.gen++
	return err
}

// Remove implements unify.Layer. Child teardowns fan out in parallel;
// teardown is best-effort (siblings are not canceled on error), the first
// error is reported, and a failed Remove keeps the service removable: the
// record and DoV reservation are dropped only once every child teardown
// succeeded, and retries tolerate children already gone.
func (ro *ResourceOrchestrator) Remove(ctx context.Context, serviceID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ro.mu.Lock()
	rec, ok := ro.services[serviceID]
	if !ok {
		ro.mu.Unlock()
		return fmt.Errorf("%w: %s", unify.ErrUnknownService, serviceID)
	}
	if rec.state != stateReady {
		ro.mu.Unlock()
		return fmt.Errorf("%w: service %s has an operation in flight", unify.ErrBusy, serviceID)
	}
	rec.state = stateRemoving
	ro.mu.Unlock()

	children := sortedKeys(rec.children)
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, childID := range children {
		wg.Add(1)
		go func(i int, childID string) {
			defer wg.Done()
			d, err := ro.reg.Get(childID)
			if err != nil {
				errs[i] = err
				return
			}
			for _, subID := range rec.children[childID] {
				err := d.Remove(ctx, subID)
				// A child that no longer knows the sub-service was torn down
				// by an earlier partially-failed Remove: retries treat it as
				// done.
				if err != nil && !errors.Is(err, unify.ErrUnknownService) && errs[i] == nil {
					errs[i] = fmt.Errorf("core: remove %s on %s: %w", subID, childID, err)
				}
			}
		}(i, childID)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Partial teardown: keep the record (and the DoV reservation, since
		// children may still hold resources) so the caller can retry.
		ro.mu.Lock()
		rec.state = stateReady
		ro.mu.Unlock()
		return firstErr
	}
	if err := ro.releaseDoV(rec.mapping); err != nil {
		firstErr = err
	}
	ro.mu.Lock()
	delete(ro.services, serviceID)
	ro.mu.Unlock()
	return firstErr
}

// Services implements unify.Layer. Pending installs are not listed: a service
// exists northbound only once its Install returned.
func (ro *ResourceOrchestrator) Services() []string {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	out := make([]string, 0, len(ro.services))
	for id, rec := range ro.services {
		if rec.state == statePending {
			continue
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Capabilities lets an orchestrator act as a native domain of a parent.
func (ro *ResourceOrchestrator) Capabilities() []domain.Capability {
	return []domain.Capability{domain.CapCompute, domain.CapForwarding, domain.CapNative}
}

// split turns a mapping over a DoV snapshot into per-child sub-requests: each
// child receives the NFs placed on its nodes (pinned) plus the hop segments
// that run inside it. Hop paths are cut at border SAPs and at links between
// nodes of different children.
func (ro *ResourceOrchestrator) split(snap *nffg.NFFG, owner map[nffg.ID]string, serviceID string, mp *embed.Mapping) (map[string]*nffg.NFFG, error) {
	subs := map[string]*nffg.NFFG{}
	getSub := func(child string) *nffg.NFFG {
		if s, ok := subs[child]; ok {
			return s
		}
		s := nffg.New(fmt.Sprintf("%s#%s", serviceID, child))
		subs[child] = s
		return s
	}
	// NFs.
	for _, nfID := range mp.Request.NFIDs() {
		nf := mp.Request.NFs[nfID]
		host := mp.NFHost[nfID]
		child, ok := owner[host]
		if !ok {
			return nil, fmt.Errorf("core: DoV node %s has no owning child", host)
		}
		sub := getSub(child)
		c := &nffg.NF{
			ID: nfID, Name: nf.Name, FunctionalType: nf.FunctionalType,
			DeployType: nf.DeployType, Demand: nf.Demand, Host: host,
		}
		for _, p := range nf.Ports {
			cp := *p
			c.Ports = append(c.Ports, &cp)
		}
		if err := sub.AddNF(c); err != nil {
			return nil, err
		}
	}
	// Hop segments.
	for _, h := range mp.Request.Hops {
		p := mp.Paths[h.ID]
		segments, err := segment(owner, h, p)
		if err != nil {
			return nil, err
		}
		for _, seg := range segments {
			sub := getSub(seg.child)
			ensureSAPs(sub, snap, seg)
			hop := &nffg.SGHop{
				ID:        seg.id,
				SrcNode:   seg.srcNode,
				SrcPort:   seg.srcPort,
				DstNode:   seg.dstNode,
				DstPort:   seg.dstPort,
				Bandwidth: h.Bandwidth,
				// Border segments must classify on the true end-to-end
				// destination, not the border SAP the segment stops at.
				FlowDst: chainFlowDst(mp.Request, h),
			}
			if err := sub.AddHop(hop); err != nil {
				return nil, err
			}
		}
	}
	return subs, nil
}

// segment describes one intra-child piece of a hop.
type segmentInfo struct {
	child            string
	id               string
	srcNode, dstNode nffg.ID
	srcPort, dstPort string
}

// segment cuts one hop's DoV path into child-local pieces. Border SAPs (SAP
// nodes in the middle of a path) are the cut points; they appear as SAP
// endpoints in both adjacent children.
func segment(owner map[nffg.ID]string, h *nffg.SGHop, p topo.Path) ([]segmentInfo, error) {
	// Resolve which child each path node belongs to; SAPs resolve to "".
	childOf := func(n topo.NodeID) string { return owner[nffg.ID(n)] }
	// Single-node path (co-located endpoints) or single-child path.
	var segs []segmentInfo
	curChild := ""
	segSrcNode, segSrcPort := h.SrcNode, h.SrcPort
	idx := 1
	flush := func(dstNode nffg.ID, dstPort string) {
		if curChild == "" {
			return
		}
		segs = append(segs, segmentInfo{
			child: curChild, id: fmt.Sprintf("%s#%d", h.ID, idx),
			srcNode: segSrcNode, srcPort: segSrcPort,
			dstNode: dstNode, dstPort: dstPort,
		})
		idx++
	}
	for i, n := range p.Nodes {
		c := childOf(n)
		if c == "" {
			// SAP node: terminal or border cut point.
			if i == 0 || i == len(p.Nodes)-1 {
				continue
			}
			flush(nffg.ID(n), "1")
			curChild = ""
			segSrcNode, segSrcPort = nffg.ID(n), "1"
			continue
		}
		if curChild == "" {
			curChild = c
			continue
		}
		if c != curChild {
			// Direct inter-child link without a border SAP is not supported:
			// children must be stitched via shared SAPs.
			return nil, fmt.Errorf("core: hop %s crosses %s->%s without a border SAP", h.ID, curChild, c)
		}
	}
	flush(h.DstNode, h.DstPort)
	if len(segs) == 1 {
		segs[0].id = h.ID // single-child hops keep their original ID
	}
	if len(segs) == 0 {
		// Pure SAP-to-SAP path with no infra (degenerate); nothing to deploy.
		return nil, nil
	}
	return segs, nil
}

// ensureSAPs copies any SAP endpoints a segment references into the
// sub-request so it validates standalone.
func ensureSAPs(sub *nffg.NFFG, dov *nffg.NFFG, seg segmentInfo) {
	for _, n := range []nffg.ID{seg.srcNode, seg.dstNode} {
		if s, ok := dov.SAPs[n]; ok {
			if _, have := sub.SAPs[n]; !have {
				p := *s.Port
				_ = sub.AddSAP(&nffg.SAP{ID: n, Name: s.Name, Port: &p})
			}
		}
	}
}

// chainFlowDst resolves the terminal SAP of the chain containing h within
// the request (mirrors the walk the embedding layer performs).
func chainFlowDst(req *nffg.NFFG, h *nffg.SGHop) nffg.ID {
	if h.FlowDst != "" {
		return h.FlowDst
	}
	cur := h
	for steps := 0; steps <= len(req.Hops); steps++ {
		if _, ok := req.SAPs[cur.DstNode]; ok {
			return cur.DstNode
		}
		var next *nffg.SGHop
		for _, cand := range req.Hops {
			if cand.SrcNode == cur.DstNode {
				next = cand
				break
			}
		}
		if next == nil {
			return ""
		}
		cur = next
	}
	return ""
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package core

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/embed"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/topo"
	"github.com/unify-repro/escape/internal/unify"
)

// ResourceOrchestrator is the manager of the paper's architecture: it merges
// the virtualization views of its southbound layers into a global resource
// view (the DoV — domain of views), maps incoming requests onto it, and
// splits the result into sub-requests for each child. It implements
// unify.Layer northbound, so orchestrators stack recursively.
type ResourceOrchestrator struct {
	id     string
	virt   Virtualizer
	mapper *embed.Mapper
	reg    *domain.Registry

	mu       sync.Mutex
	dov      *nffg.NFFG         // configured global resource view
	owner    map[nffg.ID]string // DoV infra -> child ID that exported it
	services map[string]*serviceRecord
}

type serviceRecord struct {
	mapping *embed.Mapping
	// children maps child ID -> sub-service IDs installed there.
	children map[string][]string
	receipt  *unify.Receipt
}

// Config configures a ResourceOrchestrator.
type Config struct {
	// ID names the orchestrator (and its layer).
	ID string
	// Virtualizer selects the northbound view policy (default DomainBiSBiS).
	Virtualizer Virtualizer
	// Mapper selects the embedding algorithm (default embed.NewDefault).
	Mapper *embed.Mapper
}

// NewResourceOrchestrator creates an orchestrator with no children attached.
func NewResourceOrchestrator(cfg Config) *ResourceOrchestrator {
	if cfg.Virtualizer == nil {
		cfg.Virtualizer = DomainBiSBiS{}
	}
	if cfg.Mapper == nil {
		cfg.Mapper = embed.NewDefault()
	}
	if cfg.ID == "" {
		cfg.ID = "ro"
	}
	return &ResourceOrchestrator{
		id:       cfg.ID,
		virt:     cfg.Virtualizer,
		mapper:   cfg.Mapper,
		reg:      domain.NewRegistry(),
		services: map[string]*serviceRecord{},
	}
}

// ID implements unify.Layer.
func (ro *ResourceOrchestrator) ID() string { return ro.id }

// Attach registers a southbound layer (an infrastructure domain adapter or
// another orchestrator) and folds its view into the DoV. Children exporting
// the same SAP IDs are stitched at those border SAPs.
func (ro *ResourceOrchestrator) Attach(d domain.Domain) error {
	if err := ro.reg.Register(d); err != nil {
		return err
	}
	view, err := d.View()
	if err != nil {
		_ = ro.reg.Deregister(d.ID())
		return fmt.Errorf("core: attach %s: %w", d.ID(), err)
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.dov == nil {
		ro.dov = nffg.New(ro.id + "-dov")
		ro.owner = map[nffg.ID]string{}
	}
	if err := ro.dov.Merge(view); err != nil {
		_ = ro.reg.Deregister(d.ID())
		return fmt.Errorf("core: merge view of %s: %w", d.ID(), err)
	}
	for _, infra := range view.InfraIDs() {
		ro.owner[infra] = d.ID()
	}
	return nil
}

// Children lists attached child layer IDs.
func (ro *ResourceOrchestrator) Children() []string { return ro.reg.Names() }

// DoV returns a copy of the current global resource view (for inspection).
func (ro *ResourceOrchestrator) DoV() *nffg.NFFG {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.dov == nil {
		return nffg.New(ro.id + "-dov")
	}
	return ro.dov.Copy()
}

// View implements unify.Layer: the northbound virtualization of the DoV.
func (ro *ResourceOrchestrator) View() (*nffg.NFFG, error) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.dov == nil {
		return nil, ErrEmptyView
	}
	return ro.virt.View(ro.dov)
}

// Install implements unify.Layer: map the request on the DoV, then deploy
// per-child sub-requests.
func (ro *ResourceOrchestrator) Install(req *nffg.NFFG) (*unify.Receipt, error) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if ro.dov == nil {
		return nil, fmt.Errorf("%w: no domains attached", unify.ErrRejected)
	}
	if req.ID == "" {
		return nil, fmt.Errorf("%w: request needs an ID", unify.ErrRejected)
	}
	if _, dup := ro.services[req.ID]; dup {
		return nil, fmt.Errorf("%w: service %s already installed", unify.ErrRejected, req.ID)
	}
	// Translate view-node pins into DoV scope constraints.
	work := req.Copy()
	scope := map[nffg.ID][]nffg.ID{}
	for _, id := range work.NFIDs() {
		nf := work.NFs[id]
		if nf.Host == "" {
			continue
		}
		if _, direct := ro.dov.Infras[nf.Host]; direct {
			continue // already a DoV node (transparent views)
		}
		expanded := ro.virt.Scope(ro.dov, nf.Host)
		if len(expanded) == 0 {
			return nil, fmt.Errorf("%w: NF %s pinned to unknown view node %s", unify.ErrRejected, id, nf.Host)
		}
		if len(expanded) == 1 {
			nf.Host = expanded[0]
		} else {
			nf.Host = ""
			scope[id] = expanded
		}
	}
	mapping, err := ro.mapper.MapScoped(ro.dov, work, scope)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	newDov, err := embed.Apply(ro.dov, mapping)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	// Split the mapped request into per-child sub-requests and deploy.
	subs, err := ro.split(req.ID, mapping)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	rec := &serviceRecord{mapping: mapping, children: map[string][]string{}}
	receipt := &unify.Receipt{
		ServiceID:      req.ID,
		Placements:     map[nffg.ID]nffg.ID{},
		HopPaths:       map[string][]string{},
		Decompositions: mapping.Applied,
		Children:       map[string]*unify.Receipt{},
	}
	for nf, host := range mapping.NFHost {
		receipt.Placements[nf] = host
	}
	for hid, p := range mapping.Paths {
		var nodes []string
		for _, n := range p.Nodes {
			nodes = append(nodes, string(n))
		}
		receipt.HopPaths[hid] = nodes
	}
	var installed []struct {
		child string
		id    string
	}
	rollback := func() {
		for _, in := range installed {
			if d, err := ro.reg.Get(in.child); err == nil {
				if rerr := d.Remove(in.id); rerr != nil {
					log.Printf("core %s: rollback of %s on %s failed: %v", ro.id, in.id, in.child, rerr)
				}
			}
		}
	}
	for _, childID := range sortedKeys(subs) {
		sub := subs[childID]
		d, err := ro.reg.Get(childID)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
		}
		childReceipt, err := d.Install(sub)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("%w: child %s rejected: %v", unify.ErrRejected, childID, err)
		}
		installed = append(installed, struct {
			child string
			id    string
		}{childID, sub.ID})
		rec.children[childID] = append(rec.children[childID], sub.ID)
		receipt.Children[childID] = childReceipt
	}
	ro.dov = newDov
	rec.receipt = receipt
	ro.services[req.ID] = rec
	return receipt, nil
}

// Remove implements unify.Layer.
func (ro *ResourceOrchestrator) Remove(serviceID string) error {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	rec, ok := ro.services[serviceID]
	if !ok {
		return fmt.Errorf("%w: %s", unify.ErrUnknownService, serviceID)
	}
	var firstErr error
	for _, childID := range sortedKeys(rec.children) {
		d, err := ro.reg.Get(childID)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, subID := range rec.children[childID] {
			if err := d.Remove(subID); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("core: remove %s on %s: %w", subID, childID, err)
			}
		}
	}
	if err := embed.Release(ro.dov, rec.mapping); err != nil && firstErr == nil {
		firstErr = err
	}
	delete(ro.services, serviceID)
	return firstErr
}

// Services implements unify.Layer.
func (ro *ResourceOrchestrator) Services() []string {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	out := make([]string, 0, len(ro.services))
	for id := range ro.services {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Capabilities lets an orchestrator act as a native domain of a parent.
func (ro *ResourceOrchestrator) Capabilities() []domain.Capability {
	return []domain.Capability{domain.CapCompute, domain.CapForwarding, domain.CapNative}
}

// split turns a mapping over the DoV into per-child sub-requests: each child
// receives the NFs placed on its nodes (pinned) plus the hop segments that
// run inside it. Hop paths are cut at border SAPs and at links between nodes
// of different children.
func (ro *ResourceOrchestrator) split(serviceID string, mp *embed.Mapping) (map[string]*nffg.NFFG, error) {
	subs := map[string]*nffg.NFFG{}
	getSub := func(child string) *nffg.NFFG {
		if s, ok := subs[child]; ok {
			return s
		}
		s := nffg.New(fmt.Sprintf("%s#%s", serviceID, child))
		subs[child] = s
		return s
	}
	// NFs.
	for _, nfID := range mp.Request.NFIDs() {
		nf := mp.Request.NFs[nfID]
		host := mp.NFHost[nfID]
		child, ok := ro.owner[host]
		if !ok {
			return nil, fmt.Errorf("core: DoV node %s has no owning child", host)
		}
		sub := getSub(child)
		c := &nffg.NF{
			ID: nfID, Name: nf.Name, FunctionalType: nf.FunctionalType,
			DeployType: nf.DeployType, Demand: nf.Demand, Host: host,
		}
		for _, p := range nf.Ports {
			cp := *p
			c.Ports = append(c.Ports, &cp)
		}
		if err := sub.AddNF(c); err != nil {
			return nil, err
		}
	}
	// Hop segments.
	for _, h := range mp.Request.Hops {
		p := mp.Paths[h.ID]
		segments, err := ro.segment(h, p)
		if err != nil {
			return nil, err
		}
		for _, seg := range segments {
			sub := getSub(seg.child)
			ensureSAPs(sub, ro.dov, seg)
			hop := &nffg.SGHop{
				ID:        seg.id,
				SrcNode:   seg.srcNode,
				SrcPort:   seg.srcPort,
				DstNode:   seg.dstNode,
				DstPort:   seg.dstPort,
				Bandwidth: h.Bandwidth,
				// Border segments must classify on the true end-to-end
				// destination, not the border SAP the segment stops at.
				FlowDst: chainFlowDst(mp.Request, h),
			}
			if err := sub.AddHop(hop); err != nil {
				return nil, err
			}
		}
	}
	return subs, nil
}

// segment describes one intra-child piece of a hop.
type segmentInfo struct {
	child            string
	id               string
	srcNode, dstNode nffg.ID
	srcPort, dstPort string
}

// segment cuts one hop's DoV path into child-local pieces. Border SAPs (SAP
// nodes in the middle of a path) are the cut points; they appear as SAP
// endpoints in both adjacent children.
func (ro *ResourceOrchestrator) segment(h *nffg.SGHop, p topo.Path) ([]segmentInfo, error) {
	// Resolve which child each path node belongs to; SAPs resolve to "".
	childOf := func(n topo.NodeID) string { return ro.owner[nffg.ID(n)] }
	// Single-node path (co-located endpoints) or single-child path.
	var segs []segmentInfo
	curChild := ""
	segSrcNode, segSrcPort := h.SrcNode, h.SrcPort
	idx := 1
	flush := func(dstNode nffg.ID, dstPort string) {
		if curChild == "" {
			return
		}
		segs = append(segs, segmentInfo{
			child: curChild, id: fmt.Sprintf("%s#%d", h.ID, idx),
			srcNode: segSrcNode, srcPort: segSrcPort,
			dstNode: dstNode, dstPort: dstPort,
		})
		idx++
	}
	for i, n := range p.Nodes {
		c := childOf(n)
		if c == "" {
			// SAP node: terminal or border cut point.
			if i == 0 || i == len(p.Nodes)-1 {
				continue
			}
			flush(nffg.ID(n), "1")
			curChild = ""
			segSrcNode, segSrcPort = nffg.ID(n), "1"
			continue
		}
		if curChild == "" {
			curChild = c
			continue
		}
		if c != curChild {
			// Direct inter-child link without a border SAP is not supported:
			// children must be stitched via shared SAPs.
			return nil, fmt.Errorf("core: hop %s crosses %s->%s without a border SAP", h.ID, curChild, c)
		}
	}
	flush(h.DstNode, h.DstPort)
	if len(segs) == 1 {
		segs[0].id = h.ID // single-child hops keep their original ID
	}
	if len(segs) == 0 {
		// Pure SAP-to-SAP path with no infra (degenerate); nothing to deploy.
		return nil, nil
	}
	return segs, nil
}

// ensureSAPs copies any SAP endpoints a segment references into the
// sub-request so it validates standalone.
func ensureSAPs(sub *nffg.NFFG, dov *nffg.NFFG, seg segmentInfo) {
	for _, n := range []nffg.ID{seg.srcNode, seg.dstNode} {
		if s, ok := dov.SAPs[n]; ok {
			if _, have := sub.SAPs[n]; !have {
				p := *s.Port
				_ = sub.AddSAP(&nffg.SAP{ID: n, Name: s.Name, Port: &p})
			}
		}
	}
}

// chainFlowDst resolves the terminal SAP of the chain containing h within
// the request (mirrors the walk the embedding layer performs).
func chainFlowDst(req *nffg.NFFG, h *nffg.SGHop) nffg.ID {
	if h.FlowDst != "" {
		return h.FlowDst
	}
	cur := h
	for steps := 0; steps <= len(req.Hops); steps++ {
		if _, ok := req.SAPs[cur.DstNode]; ok {
			return cur.DstNode
		}
		var next *nffg.SGHop
		for _, cand := range req.Hops {
			if cand.SrcNode == cur.DstNode {
				next = cand
				break
			}
		}
		if next == nil {
			return ""
		}
		cur = next
	}
	return ""
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

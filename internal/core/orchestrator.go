package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/embed"
	"github.com/unify-repro/escape/internal/journal"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/obs"
	"github.com/unify-repro/escape/internal/topo"
	"github.com/unify-repro/escape/internal/unify"
)

// MaxMapAttempts bounds the optimistic snapshot→map→commit retries of an
// Install: each retry re-reads the DoV after a concurrent commit bumped the
// generation. Exhaustion returns unify.ErrBusy — the request was never
// rejected on its merits, only crowded out.
const MaxMapAttempts = 8

// ResourceOrchestrator is the manager of the paper's architecture: it merges
// the virtualization views of its southbound layers into a global resource
// view (the DoV — domain of views), maps incoming requests onto it, and
// splits the result into sub-requests for each child. It implements
// unify.Layer northbound, so orchestrators stack recursively.
//
// Concurrency model (sharded snapshot → map → commit): the DoV is partitioned
// into shards (one per child domain by default, see Config.ShardKey), each an
// immutable graph value guarded by its own generation counter. An install
// estimates the shard set its request can touch, snapshots a consistent cut
// of those shards, runs the CPU-bound embedding against the merged snapshot
// without holding any lock, and re-validates the touched shards' generations
// in a short critical section when swapping the new graphs in — locking the
// shards in key order, so multi-shard commits are an ordered two-phase swap
// while single-shard commits take exactly one lock. Installs whose shard sets
// are disjoint therefore snapshot, map and commit fully concurrently; only
// overlapping ones contend, and a loser re-maps on a fresh cut (bounded by
// MaxMapAttempts). Child deployments then fan out in parallel goroutines with
// first-error cancellation, so install latency is the slowest child rather
// than the sum of all children.
type ResourceOrchestrator struct {
	id       string
	virt     Virtualizer
	mapper   *embed.Mapper
	reg      *domain.Registry
	shardKey ShardKeyFunc
	// journal receives write-ahead records on the commit paths (may be nil).
	// Appends ride the shard locks they describe, so per-shard record order
	// matches commit order without any global serialization.
	journal Journal

	// Read-path configuration (see readcache.go): noReadCache disables the
	// generation-keyed cut/view caches, conservativeEstimate restores the
	// pre-reverse-index shard estimator. Both exist as measurable baselines.
	noReadCache          bool
	conservativeEstimate bool

	// mu guards the registration-time metadata (dir, owner, contrib/index) —
	// all replaced copy-on-write so planners read snapshots lock-free — plus
	// the service table and the global NF/hop identifier reservations. Lock
	// order: a shard mutex may be acquired before mu, never while holding mu.
	mu       sync.Mutex
	dir      *shardDirectory
	owner    map[nffg.ID]string // immutable snapshot: DoV infra -> child ID that exported it
	services map[string]*serviceRecord
	// nfOwner/hopOwner reserve request-graph identifiers globally: shards
	// commit independently, so cross-shard uniqueness of NF and hop IDs (the
	// invariant the old single-graph ApplyTo enforced for free) is checked
	// here at admission instead.
	nfOwner  map[nffg.ID]string
	hopOwner map[string]string
	// contrib maps shard key -> node IDs it answers for (tagged with the
	// shard generation it was derived from); index is the derived reverse
	// index (node -> sorted shard keys) ShardSet reads. Both rebuilt at
	// attach time only (commit never changes membership; see readcache.go).
	contrib map[string]shardContrib
	index   map[nffg.ID][]string
	// departed tombstones nodes whose owning child was detached at runtime
	// (node -> former child ID), so installs referencing them get a typed
	// ErrDomainUnavailable instead of an opaque global-plan rejection. A
	// re-attach contributing the node clears its tombstone. Guarded by mu.
	departed map[nffg.ID]string
	// lastGen remembers the final generation of every shard a Detach dropped,
	// so a re-attach of the same key resumes counting instead of restarting
	// at zero — per-shard journal records must stay gen-monotone across
	// detach/attach cycles (see internal/journal replay). Guarded by mu.
	lastGen map[string]uint64

	// gate, when set (see SetDomainGate), vets child availability on the
	// install intake and deploy fan-out paths: the fleet controller installs
	// one so requests targeting a non-ACTIVE domain fail fast and typed.
	gate atomic.Pointer[DomainGate]

	// Attach view-fetch bounds (see Config.ViewTimeout / ViewRetries).
	viewTimeout time.Duration
	viewRetries int

	// epoch counts committed DoV changes (attach merges, install commits,
	// releases) across all shards — the logical generation northbound.
	// Every bump goes through bumpEpoch (version.go) so watch waiters wake.
	epoch atomic.Uint64
	// tableVer counts service-table visibility changes (deploy completions,
	// removal drops) that move the northbound version WITHOUT a DoV commit:
	// the shard vector — and thus the view ETag — is unchanged, but watch
	// streams must still deliver the refreshed service list. The watch
	// cursor (ViewVersion.Generation) is epoch + tableVer; Generation()
	// stays a pure commit counter.
	tableVer atomic.Uint64
	// watch broadcasts epoch bumps to WaitVersion callers (watch streams).
	watch changeNotifier

	// Generation-keyed read caches (see readcache.go). cutCache holds the
	// all-shard cut; scopedCuts the per-shard-subset cuts narrowed admission
	// groups plan on. Both account under cutStats.
	cutCache   atomic.Pointer[cutEntry]
	viewCache  atomic.Pointer[viewEntry]
	scopedCuts scopedCutCache
	cutStats   cacheCounters
	viewStats  cacheCounters

	// Contention counters of the mapping pipeline (see PipelineStats).
	stats struct {
		installs, mapAttempts, genConflicts, busy, batches, batchedReqs atomic.Uint64
		multiShard, escalations, mergeErrors, journalErrs               atomic.Uint64
	}

	// Per-stage latency distributions (see StageHistograms).
	histMap    obs.Histogram
	histCommit obs.Histogram
}

// PipelineStats are cumulative counters of the snapshot→map→commit pipeline,
// exposed for observability (internal/monitor renders them): how often
// installs re-map, how often commits collide, and how much batching
// amortizes.
type PipelineStats struct {
	// Installs counts successfully deployed requests.
	Installs uint64 `json:"installs"`
	// MapAttempts counts snapshot→map→commit cycles (≥1 per shard group).
	MapAttempts uint64 `json:"map_attempts"`
	// GenConflicts counts commits lost to a concurrent generation bump on an
	// overlapping shard.
	GenConflicts uint64 `json:"gen_conflicts"`
	// Busy counts requests that exhausted MaxMapAttempts (unify.ErrBusy).
	Busy uint64 `json:"busy"`
	// Batches counts committed admission batches; BatchedRequests the
	// requests they carried (BatchedRequests/Batches = mean batch size).
	Batches         uint64 `json:"batches"`
	BatchedRequests uint64 `json:"batched_requests"`
	// MultiShardCommits counts commits that spanned more than one shard (the
	// ordered two-phase path).
	MultiShardCommits uint64 `json:"multi_shard_commits"`
	// Escalations counts requests whose scoped plan failed and was retried
	// against the full shard set.
	Escalations uint64 `json:"escalations"`
	// MergeErrors counts failed all-shard cut merges (colliding shard
	// exports). The error is propagated to the View/DoV/plan caller instead
	// of serving an incomplete cut; a nonzero counter means the DoV holds
	// conflicting state and needs operator attention.
	MergeErrors uint64 `json:"merge_errors"`
	// JournalErrors counts failed write-ahead journal appends. The in-memory
	// commit proceeds (the state change already happened); a nonzero counter
	// means durability is degraded and a crash may lose those records.
	JournalErrors uint64 `json:"journal_errors"`
	// CutCache/ViewCache count the generation-keyed read caches: the merged
	// all-shard cut (plus the per-shard-subset cuts narrowed admission groups
	// plan on) and the memoized virtualizer view (see readcache.go).
	CutCache  CacheStats `json:"cut_cache"`
	ViewCache CacheStats `json:"view_cache"`
	// Southbound aggregates device-programming counters from every attached
	// child that exposes them (see southbound.go): what the control plane
	// sent toward real dataplanes and what each delta cost.
	Southbound SouthboundStats `json:"southbound"`
}

// serviceState tracks the lifecycle of a serviceRecord so concurrent
// operations on the same ID exclude each other without holding the
// orchestrator lock across actuation.
type serviceState int

const (
	// statePending: install in flight; the ID is reserved and (after commit)
	// DoV resources are held, but children may not be programmed yet.
	statePending serviceState = iota
	// stateReady: fully deployed.
	stateReady
	// stateRemoving: teardown in flight.
	stateRemoving
)

type serviceRecord struct {
	state   serviceState
	mapping *embed.Mapping
	// children maps child ID -> sub-service IDs installed there.
	children map[string][]string
	receipt  *unify.Receipt
	// shards is the set of shard keys the committed mapping touched (the
	// shards Remove must release).
	shards []string
	// resNFs/resHops are the identifiers reserved in nfOwner/hopOwner.
	resNFs  []nffg.ID
	resHops []string
}

// Config configures a ResourceOrchestrator.
type Config struct {
	// ID names the orchestrator (and its layer).
	ID string
	// Virtualizer selects the northbound view policy (default DomainBiSBiS).
	Virtualizer Virtualizer
	// Mapper selects the embedding algorithm (default embed.NewDefault).
	Mapper *embed.Mapper
	// ShardKey groups child domains into DoV shards (default ShardPerDomain:
	// every child gets its own shard; SingleShard restores the pre-sharding
	// single generation counter).
	ShardKey ShardKeyFunc
	// NoReadCache disables the generation-keyed cut/view caches: every read
	// re-merges and re-virtualizes. The measurable baseline for the cached
	// read path (BenchmarkE9ReadPath) — production configs leave it off.
	NoReadCache bool
	// ConservativeShardEstimate restores the pre-reverse-index shard-set
	// estimator, where any unpinned NF makes a request global. The baseline
	// for BenchmarkE9GlobalNarrowing — production configs leave it off.
	ConservativeShardEstimate bool
	// Journal, when set, receives a write-ahead record for every state
	// mutation (attach, commit, release, deploy completion) so the DoV and
	// service table survive a crash (see internal/journal and Restore). A
	// journal append failure never fails the in-memory commit — the write
	// already happened; it is logged and counted in
	// PipelineStats.JournalErrors instead.
	Journal Journal
	// ViewTimeout bounds each child view fetch inside Attach/Reattach, so a
	// hung child cannot stall attach indefinitely; ViewRetries is the number
	// of additional fetch attempts after a failure. Zero values leave the
	// caller's context in charge and fetch exactly once.
	ViewTimeout time.Duration
	ViewRetries int
}

// NewResourceOrchestrator creates an orchestrator with no children attached.
func NewResourceOrchestrator(cfg Config) *ResourceOrchestrator {
	if cfg.Virtualizer == nil {
		cfg.Virtualizer = DomainBiSBiS{}
	}
	if cfg.Mapper == nil {
		cfg.Mapper = embed.NewDefault()
	}
	if cfg.ID == "" {
		cfg.ID = "ro"
	}
	if cfg.ShardKey == nil {
		cfg.ShardKey = ShardPerDomain
	}
	return &ResourceOrchestrator{
		id:                   cfg.ID,
		virt:                 cfg.Virtualizer,
		mapper:               cfg.Mapper,
		reg:                  domain.NewRegistry(),
		shardKey:             cfg.ShardKey,
		journal:              cfg.Journal,
		noReadCache:          cfg.NoReadCache,
		conservativeEstimate: cfg.ConservativeShardEstimate,
		dir:                  newShardDirectory(),
		owner:                map[nffg.ID]string{},
		services:             map[string]*serviceRecord{},
		nfOwner:              map[nffg.ID]string{},
		hopOwner:             map[string]string{},
		contrib:              map[string]shardContrib{},
		index:                map[nffg.ID][]string{},
		departed:             map[nffg.ID]string{},
		lastGen:              map[string]uint64{},
		viewTimeout:          cfg.ViewTimeout,
		viewRetries:          cfg.ViewRetries,
	}
}

// DomainGate vets a child domain on the install paths: a non-nil return means
// requests must not be sent its way right now. The returned error is wrapped
// in unify.ErrDomainUnavailable before surfacing northbound.
type DomainGate func(child string) error

// SetDomainGate installs (or, with nil, removes) the availability gate
// consulted by install intake and the deploy fan-out. Safe to call at any
// time; in-flight operations observe the change at their next check.
func (ro *ResourceOrchestrator) SetDomainGate(gate DomainGate) {
	if gate == nil {
		ro.gate.Store(nil)
		return
	}
	ro.gate.Store(&gate)
}

// gateErr returns the typed unavailability error for a child, or nil when no
// gate is installed or the gate passes.
func (ro *ResourceOrchestrator) gateErr(child string) error {
	g := ro.gate.Load()
	if g == nil {
		return nil
	}
	if err := (*g)(child); err != nil {
		return fmt.Errorf("%w: child %s: %v", unify.ErrDomainUnavailable, child, err)
	}
	return nil
}

// fetchChildView fetches a child's exported view with the configured per-try
// deadline and bounded retries, so Attach cannot hang on an unresponsive
// child.
func (ro *ResourceOrchestrator) fetchChildView(ctx context.Context, d domain.Domain) (*nffg.NFFG, error) {
	attempts := ro.viewRetries + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		vctx, cancel := ctx, context.CancelFunc(func() {})
		if ro.viewTimeout > 0 {
			vctx, cancel = context.WithTimeout(ctx, ro.viewTimeout)
		}
		view, err := d.View(vctx)
		cancel()
		if err == nil {
			return view, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("view fetch failed after %d attempts: %w", attempts, lastErr)
}

// ID implements unify.Layer.
func (ro *ResourceOrchestrator) ID() string { return ro.id }

// Attach registers a southbound layer (an infrastructure domain adapter or
// another orchestrator) and folds its view into the DoV shard its shard key
// selects. Children exporting the same SAP IDs are stitched at those border
// SAPs (also across shards: a border SAP shared by two shards appears in
// both, and is the stitch point when their graphs are merged for planning).
// Link IDs are qualified with the child ID so they stay unique across shards.
// The merge runs on a copy that is swapped in only on success, so a failed
// Attach can never leave a partially-merged shard behind. ctx bounds the
// child view fetch (which may be a remote call).
func (ro *ResourceOrchestrator) Attach(ctx context.Context, d domain.Domain) error {
	if err := ro.reg.Register(d); err != nil {
		return err
	}
	view, err := ro.fetchChildView(ctx, d)
	if err != nil {
		_ = ro.reg.Deregister(d.ID())
		return fmt.Errorf("core: attach %s: %w", d.ID(), err)
	}
	// Qualify link IDs: shard graphs are merged on demand for planning, and
	// per-child qualification keeps link identity stable across any merge
	// order (the mapping's path link IDs must resolve in the owning shard).
	qual := view.Copy()
	for _, l := range qual.Links {
		l.ID = l.ID + "@" + d.ID()
	}
	key := ro.shardKey(d.ID())

	ro.mu.Lock()
	// Infra IDs must stay globally unique even across shards (the owner map
	// is the authority the per-graph merge check used to be).
	for _, id := range qual.InfraIDs() {
		if prev, ok := ro.owner[id]; ok {
			ro.mu.Unlock()
			_ = ro.reg.Deregister(d.ID())
			return fmt.Errorf("core: attach %s: infra %s already exported by %s", d.ID(), id, prev)
		}
	}
	dir := ro.dir.clone()
	sh, existed := dir.shards[key]
	if !existed {
		sh = &shard{key: key}
		if last, ok := ro.lastGen[key]; ok {
			// The key was detached before: resume its generation counter so
			// the shard's journal records stay gen-monotone across the
			// detach/attach cycle (replay relies on it).
			sh.gen, sh.commits = last, last
		}
		dir.shards[key] = sh
		dir.keys = append(dir.keys, key)
		sort.Strings(dir.keys)
	}
	dir.childShard[d.ID()] = key
	dir.domains[key] = append(dir.domains[key], d.ID())
	sort.Strings(dir.domains[key])
	owner := make(map[nffg.ID]string, len(ro.owner)+len(qual.Infras))
	for k, v := range ro.owner {
		owner[k] = v
	}
	for _, infra := range qual.InfraIDs() {
		owner[infra] = d.ID()
	}
	// A node contributed by a (re)attaching child is available again: clear
	// any detach tombstone so installs stop failing typed on it.
	if len(ro.departed) > 0 {
		for _, infra := range qual.InfraIDs() {
			delete(ro.departed, infra)
		}
		for sapID := range qual.SAPs {
			delete(ro.departed, sapID)
		}
	}
	ro.dir = dir
	ro.owner = owner
	ro.mu.Unlock()

	sh.mu.Lock()
	next := nffg.New(ro.id + "-dov")
	if sh.dov != nil {
		next = sh.dov.Copy()
	}
	if err := next.Merge(qual); err != nil {
		// Remove exactly our entries from the current state (not a snapshot
		// restore, which would clobber concurrent attaches of other children).
		// sh.mu is still held — lock order shard→ro.mu is the allowed
		// direction — so sh.dov cannot change while we decide whether the
		// shard itself must go.
		ro.mu.Lock()
		rb := ro.dir.clone()
		delete(rb.childShard, d.ID())
		kept := rb.domains[key][:0]
		for _, c := range rb.domains[key] {
			if c != d.ID() {
				kept = append(kept, c)
			}
		}
		rb.domains[key] = kept
		if len(kept) == 0 && sh.dov == nil {
			// We created this shard and nothing ever merged into it: drop it,
			// or it would haunt ShardStats and every all-shard cut forever.
			delete(rb.shards, key)
			delete(rb.domains, key)
			keys := rb.keys[:0]
			for _, k := range rb.keys {
				if k != key {
					keys = append(keys, k)
				}
			}
			rb.keys = keys
		}
		rbOwner := make(map[nffg.ID]string, len(ro.owner))
		for k, v := range ro.owner {
			if v != d.ID() {
				rbOwner[k] = v
			}
		}
		ro.dir, ro.owner = rb, rbOwner
		ro.mu.Unlock()
		sh.mu.Unlock()
		_ = ro.reg.Deregister(d.ID())
		return fmt.Errorf("core: merge view of %s: %w", d.ID(), err)
	}
	sh.dov = next.Seal()
	sh.gen++
	sh.commits++
	if ro.journal != nil {
		// Journaled inside the critical section so the shard's record order
		// matches its commit order; the epoch is bumped here for the same
		// reason (observably identical — it is a plain monotonic counter).
		epoch := ro.bumpEpoch()
		if err := ro.journal.LogAttach(key, sh.gen, epoch, d.ID(), ro.id+"-dov", qual); err != nil {
			ro.stats.journalErrs.Add(1)
			log.Printf("core %s: journal attach %s: %v", ro.id, d.ID(), err)
		} else {
			sh.journalRecs++
		}
		sh.mu.Unlock()
	} else {
		sh.mu.Unlock()
		ro.bumpEpoch()
	}

	// Refresh the reverse index with the shard's new contribution (its DoV
	// nodes, SAPs and the view nodes they aggregate into). The contribution
	// is computed from the shard's CURRENT graph — not from `next`, which a
	// concurrent Attach to the same shard key may already have superseded —
	// and stored guarded by the shard generation it was derived from, so a
	// late writer can never clobber a newer sibling's contribution. Between
	// the commit above and this update, ShardSet may briefly miss the new
	// nodes and fall back to a global estimate — safe, merely conservative.
	sh.mu.Lock()
	cur, curGen := sh.dov, sh.gen
	sh.mu.Unlock()
	contribution := shardContrib{gen: curGen, nodes: ro.shardContribution(cur)}
	ro.mu.Lock()
	if prev, ok := ro.contrib[key]; !ok || curGen >= prev.gen {
		contrib := make(map[string]shardContrib, len(ro.contrib)+1)
		for k, v := range ro.contrib {
			contrib[k] = v
		}
		contrib[key] = contribution
		ro.contrib = contrib
		ro.rebuildIndexLocked()
	}
	ro.mu.Unlock()
	return nil
}

// Children lists attached child layer IDs.
func (ro *ResourceOrchestrator) Children() []string { return ro.reg.Names() }

// ShardOf returns the DoV shard key an attached child's view lives in.
func (ro *ResourceOrchestrator) ShardOf(child string) (string, bool) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	key, ok := ro.dir.childShard[child]
	return key, ok
}

// snapshotDir returns the current immutable (directory, owner) pair.
func (ro *ResourceOrchestrator) snapshotDir() (*shardDirectory, map[nffg.ID]string) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.dir, ro.owner
}

// Generation returns the DoV epoch: the number of committed DoV changes
// (attach merges, install commits, releases) since start, summed across
// shards but counted once per commit event.
func (ro *ResourceOrchestrator) Generation() uint64 {
	return ro.epoch.Load()
}

// PipelineStats returns the cumulative mapping-pipeline counters.
func (ro *ResourceOrchestrator) PipelineStats() PipelineStats {
	return PipelineStats{
		Installs:          ro.stats.installs.Load(),
		MapAttempts:       ro.stats.mapAttempts.Load(),
		GenConflicts:      ro.stats.genConflicts.Load(),
		Busy:              ro.stats.busy.Load(),
		Batches:           ro.stats.batches.Load(),
		BatchedRequests:   ro.stats.batchedReqs.Load(),
		MultiShardCommits: ro.stats.multiShard.Load(),
		Escalations:       ro.stats.escalations.Load(),
		MergeErrors:       ro.stats.mergeErrors.Load(),
		JournalErrors:     ro.stats.journalErrs.Load(),
		CutCache:          ro.cutStats.snapshot(),
		ViewCache:         ro.viewStats.snapshot(),
		Southbound:        ro.SouthboundStats(),
	}
}

// StageHistograms returns the orchestrator's per-stage latency distributions:
// "map" is one snapshot→plan pass over a shard group (including retries),
// "commit" the locked generation-validate-and-swap of a successful commit.
func (ro *ResourceOrchestrator) StageHistograms() map[string]obs.HistogramSnapshot {
	return map[string]obs.HistogramSnapshot{
		"map":    ro.histMap.Snapshot(),
		"commit": ro.histCommit.Snapshot(),
	}
}

// SouthboundStats implements SouthboundStatsProvider by aggregating every
// attached child that exposes southbound counters (leaf adapters record
// them; nested orchestrators aggregate recursively).
func (ro *ResourceOrchestrator) SouthboundStats() SouthboundStats {
	var agg SouthboundStats
	for _, d := range ro.reg.All() {
		if sp, ok := d.(SouthboundStatsProvider); ok {
			agg.Merge(sp.SouthboundStats())
		}
	}
	return agg
}

// ShardStats reports every DoV shard's generation and commit counters, in
// shard-key order.
func (ro *ResourceOrchestrator) ShardStats() []ShardStats {
	dir, _ := ro.snapshotDir()
	out := make([]ShardStats, 0, len(dir.keys))
	for _, key := range dir.keys {
		sh := dir.shards[key]
		sh.mu.Lock()
		st := ShardStats{
			Shard:             key,
			Domains:           append([]string(nil), dir.domains[key]...),
			Gen:               sh.gen,
			Commits:           sh.commits,
			Conflicts:         sh.conflicts,
			MultiShardCommits: sh.multi,
			JournalRecords:    sh.journalRecs,
			RestoredGen:       sh.restoredGen,
		}
		sh.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// DoV returns the current global resource view, assembled from a consistent
// cut across all shards: a multi-shard commit is never observed half-applied.
// The returned graph is a SHARED, sealed snapshot served from the
// generation-keyed cut cache — treat it as read-only and Copy() before
// mutating (race builds enforce this). An error means the shard exports
// could not be merged into one cut (see PipelineStats.MergeErrors).
func (ro *ResourceOrchestrator) DoV() (*nffg.NFFG, error) {
	graphs, vec := ro.currentCut()
	merged, err := ro.mergedFromCut(graphs, vec)
	if err != nil {
		return nil, err
	}
	if merged == nil {
		return nffg.New(ro.id + "-dov"), nil
	}
	return merged, nil
}

// View implements unify.Layer: the northbound virtualization of the DoV.
// The view derives from an immutable consistent cut, so the computation runs
// without holding any shard lock — and on the steady state it is a pointer
// return: the virtualizer output is memoized per generation vector, so
// repeated views between commits share one sealed graph (readers Copy()
// before mutating, per the unify.Layer contract).
func (ro *ResourceOrchestrator) View(ctx context.Context) (*nffg.NFFG, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	graphs, vec := ro.currentCut()
	return ro.viewFromCut(graphs, vec)
}

// viewFromCut computes (or serves cached) the virtualizer output over one
// consistent cut — the shared tail of View and VersionedView.
func (ro *ResourceOrchestrator) viewFromCut(graphs []*nffg.NFFG, vec genVec) (*nffg.NFFG, error) {
	if !ro.noReadCache {
		if e := ro.viewCache.Load(); e != nil && e.vec.equal(vec) {
			ro.viewStats.hits.Add(1)
			return e.view, nil
		}
	}
	ro.viewStats.misses.Add(1)
	merged, err := ro.mergedFromCut(graphs, vec)
	if err != nil {
		return nil, err
	}
	if merged == nil {
		return nil, ErrEmptyView
	}
	v, err := ro.virt.View(merged)
	if err != nil {
		return nil, err
	}
	v.Seal()
	if !ro.noReadCache {
		if old := ro.viewCache.Load(); old != nil {
			ro.viewStats.invalidations.Add(1)
		}
		ro.viewCache.Store(&viewEntry{vec: vec, view: v})
	}
	return v, nil
}

// ShardSet implements unify.Sharder: it estimates, without mapping, which DoV
// shards a request's embedding may touch, by looking every endpoint and pin
// up in the reverse index (node -> owning shards, maintained at attach time —
// no shard graph is read and no shard lock taken). Requests with unpinned NFs
// narrow to the shards of their SAP anchors: the scoped plan can only place
// within that cut, and a plan that legitimately needs more (a detour, a
// placement elsewhere) escalates once to a full-DoV pass. nil means the set
// could not be narrowed at all (unknown endpoint or pin, a view node spanning
// every shard, no SAP anchors): the request must be planned globally.
func (ro *ResourceOrchestrator) ShardSet(req *nffg.NFFG) []string {
	if req == nil {
		return nil
	}
	ro.mu.Lock()
	idx := ro.index
	ro.mu.Unlock()
	set := map[string]bool{}
	for sapID := range req.SAPs {
		keys := idx[sapID]
		if len(keys) == 0 {
			return nil // unknown endpoint: let the global plan reject it
		}
		for _, k := range keys {
			set[k] = true
		}
	}
	for _, id := range req.NFIDs() {
		host := req.NFs[id].Host
		if host == "" {
			if ro.conservativeEstimate || len(req.SAPs) == 0 {
				return nil // no anchor to narrow by (or legacy estimator)
			}
			continue // unpinned: bounded by the SAP-anchored cut + escalation
		}
		keys := idx[host]
		if len(keys) == 0 {
			return nil // unknown pin: let the global plan reject it
		}
		for _, k := range keys {
			set[k] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// plan runs the CPU-bound embedding of one request against an immutable DoV
// snapshot: view-pin expansion and scoped mapping. It holds no locks and
// mutates no shared state; realizing the mapping on a working DoV (and
// splitting it per child) is the caller's business.
func (ro *ResourceOrchestrator) plan(snap *nffg.NFFG, req *nffg.NFFG) (*embed.Mapping, error) {
	// Translate view-node pins into DoV scope constraints.
	work := req.Copy()
	scope := map[nffg.ID][]nffg.ID{}
	for _, id := range work.NFIDs() {
		nf := work.NFs[id]
		if nf.Host == "" {
			continue
		}
		if _, direct := snap.Infras[nf.Host]; direct {
			continue // already a DoV node (transparent views)
		}
		expanded := ro.virt.Scope(snap, nf.Host)
		if len(expanded) == 0 {
			return nil, fmt.Errorf("%w: NF %s pinned to unknown view node %s", unify.ErrRejected, id, nf.Host)
		}
		if len(expanded) == 1 {
			nf.Host = expanded[0]
		} else {
			nf.Host = ""
			scope[id] = expanded
		}
	}
	mapping, err := ro.mapper.MapScoped(snap, work, scope)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	return mapping, nil
}

// touchedShards derives the shard set a planned mapping actually occupies:
// the shards owning its NF hosts and every infra node its hop paths cross.
// The home shard (first in key order) carries the mapping's bookkeeping
// records. Falls back to the group's first shard for mappings that touch no
// infra at all (degenerate SAP-to-SAP paths).
func touchedShards(mp *embed.Mapping, owner map[nffg.ID]string, dir *shardDirectory, groupKeys []string) (keys []string, home string) {
	set := map[string]bool{}
	add := func(node nffg.ID) {
		if child, ok := owner[node]; ok {
			if key, ok := dir.childShard[child]; ok {
				set[key] = true
			}
		}
	}
	for _, host := range mp.NFHost {
		add(host)
	}
	for _, p := range mp.Paths {
		for _, n := range p.Nodes {
			add(nffg.ID(n))
		}
	}
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		keys = []string{groupKeys[0]}
	}
	return keys, keys[0]
}

// Install implements unify.Layer: a single-request admission batch (see
// InstallBatch for the snapshot→map→commit pipeline).
func (ro *ResourceOrchestrator) Install(ctx context.Context, req *nffg.NFFG) (*unify.Receipt, error) {
	out := ro.InstallBatch(ctx, []*nffg.NFFG{req}, unify.BatchObserver{})
	return out[0].Receipt, out[0].Err
}

// batchRun carries the shared state of one InstallBatch call across its
// concurrent shard groups. Each request index is owned by exactly one group
// at a time (escalated indices move to the phase-2 group only after every
// phase-1 group finished), so the per-index slices need no locking; the
// conclude/escalate bookkeeping that crosses groups is guarded by mu.
type batchRun struct {
	ro      *ResourceOrchestrator
	reqs    []*nffg.NFFG
	out     []unify.BatchOutcome
	obs     unify.BatchObserver
	records []*serviceRecord
	live    []bool
	planErr []error

	mu        sync.Mutex
	notified  []bool
	escalated []int
}

func (bc *batchRun) conclude(i int) {
	bc.mu.Lock()
	if bc.notified[i] {
		bc.mu.Unlock()
		return
	}
	bc.notified[i] = true
	bc.mu.Unlock()
	if bc.obs.Done != nil {
		bc.obs.Done(i, bc.out[i])
	}
}

func (bc *batchRun) finish() []unify.BatchOutcome {
	for i := range bc.out {
		bc.conclude(i)
	}
	return bc.out
}

// abort drops request i's reservations (service ID, NF IDs, hop IDs) and
// finalizes its error. Only the group (or deploy goroutine) owning index i
// may call it.
func (bc *batchRun) abort(i int, err error) {
	ro := bc.ro
	ro.mu.Lock()
	ro.dropReservationsLocked(bc.reqs[i].ID, bc.records[i])
	ro.mu.Unlock()
	bc.live[i] = false
	bc.out[i].Err = err
}

func (bc *batchRun) escalate(i int) {
	bc.ro.stats.escalations.Add(1)
	bc.mu.Lock()
	bc.escalated = append(bc.escalated, i)
	bc.mu.Unlock()
}

func (bc *batchRun) takeEscalated() []int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	out := bc.escalated
	bc.escalated = nil
	sort.Ints(out)
	return out
}

// dropReservationsLocked releases a service's identifier reservations.
// Callers hold ro.mu.
func (ro *ResourceOrchestrator) dropReservationsLocked(serviceID string, rec *serviceRecord) {
	delete(ro.services, serviceID)
	if rec == nil {
		return
	}
	for _, nf := range rec.resNFs {
		if ro.nfOwner[nf] == serviceID {
			delete(ro.nfOwner, nf)
		}
	}
	for _, h := range rec.resHops {
		if ro.hopOwner[h] == serviceID {
			delete(ro.hopOwner, h)
		}
	}
}

// InstallBatch implements unify.BatchInstaller: the batch is partitioned by
// the shard sets its requests can touch; groups with disjoint shard sets plan
// and commit fully concurrently, each against ONE consistent snapshot cut of
// its shards — every request over the residual capacity left by its
// predecessors — with a single generation bump per touched shard. Requests
// fail individually: a graph that cannot be embedded is rejected alone while
// the rest of its group proceeds, and a request that fails on its narrowed
// shard set is escalated once to a full-DoV plan before the rejection is
// final. After a group's commit its admitted requests fan out in parallel
// (each inheriting the per-child fan-out of deployChildren); a failed
// deployment releases only its own reservation, shard by shard.
func (ro *ResourceOrchestrator) InstallBatch(ctx context.Context, reqs []*nffg.NFFG, observer unify.BatchObserver) []unify.BatchOutcome {
	bc := &batchRun{
		ro:       ro,
		reqs:     reqs,
		out:      make([]unify.BatchOutcome, len(reqs)),
		obs:      observer,
		records:  make([]*serviceRecord, len(reqs)),
		live:     make([]bool, len(reqs)),
		planErr:  make([]error, len(reqs)),
		notified: make([]bool, len(reqs)),
	}
	if err := ctx.Err(); err != nil {
		for i := range bc.out {
			bc.out[i].Err = err
		}
		return bc.finish()
	}

	// Intake: reserve the service IDs plus the request-graph NF and hop IDs,
	// so duplicates — concurrent, within the batch, or across disjoint shards
	// — reject immediately and individually.
	ro.mu.Lock()
	if len(ro.dir.keys) == 0 {
		ro.mu.Unlock()
		for i := range bc.out {
			bc.out[i].Err = fmt.Errorf("%w: no domains attached", unify.ErrRejected)
		}
		return bc.finish()
	}
	for i, req := range reqs {
		if req == nil || req.ID == "" {
			bc.out[i].Err = fmt.Errorf("%w: request needs an ID", unify.ErrRejected)
			continue
		}
		if _, dup := ro.services[req.ID]; dup {
			bc.out[i].Err = fmt.Errorf("%w: service %s already installed", unify.ErrRejected, req.ID)
			continue
		}
		if err := ro.checkIdentifiersLocked(req); err != nil {
			bc.out[i].Err = err
			continue
		}
		if err := ro.checkDomainsLocked(req); err != nil {
			bc.out[i].Err = err
			continue
		}
		rec := &serviceRecord{state: statePending, children: map[string][]string{}}
		for _, nf := range req.NFIDs() {
			ro.nfOwner[nf] = req.ID
			rec.resNFs = append(rec.resNFs, nf)
		}
		for _, h := range req.Hops {
			ro.hopOwner[h.ID] = req.ID
			rec.resHops = append(rec.resHops, h.ID)
		}
		ro.services[req.ID] = rec
		bc.records[i] = rec
		bc.live[i] = true
	}
	ro.mu.Unlock()

	// Partition by estimated shard overlap and run the groups concurrently.
	est := make([][]string, len(reqs))
	var liveIdx []int
	for i := range reqs {
		if bc.live[i] {
			est[i] = ro.ShardSet(reqs[i])
			liveIdx = append(liveIdx, i)
		}
	}
	groups := groupByOverlap(liveIdx, est)
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g shardGroup) {
			defer wg.Done()
			bc.runGroup(ctx, g.idx, g.keys, true)
		}(g)
	}
	wg.Wait()

	// Phase 2: requests rejected on a narrowed shard set get one full-DoV
	// retry (a path may legitimately detour through a shard the estimate did
	// not include).
	if esc := bc.takeEscalated(); len(esc) > 0 {
		bc.runGroup(ctx, esc, nil, false)
	}
	return bc.finish()
}

// checkIdentifiersLocked rejects a request whose NF or hop IDs are already
// reserved by another live service. Callers hold ro.mu.
func (ro *ResourceOrchestrator) checkIdentifiersLocked(req *nffg.NFFG) error {
	for _, nf := range req.NFIDs() {
		if owner, taken := ro.nfOwner[nf]; taken {
			return fmt.Errorf("%w: NF id %s already in use by service %s", unify.ErrRejected, nf, owner)
		}
	}
	for _, h := range req.Hops {
		if owner, taken := ro.hopOwner[h.ID]; taken {
			return fmt.Errorf("%w: hop id %s already in use by service %s", unify.ErrRejected, h.ID, owner)
		}
	}
	return nil
}

// checkDomainsLocked rejects a request whose referenced nodes (SAP endpoints
// and NF host pins) are only served by unavailable child domains: detached
// ones (tombstoned in departed) or ones the fleet gate vetoes. A node with at
// least one available owner passes — shared border SAPs survive the loss of
// one exporter. Unknown nodes pass through to the global plan, which rejects
// them on their merits. Callers hold ro.mu.
func (ro *ResourceOrchestrator) checkDomainsLocked(req *nffg.NFFG) error {
	gate := ro.gate.Load()
	if gate == nil && len(ro.departed) == 0 {
		return nil
	}
	check := func(node nffg.ID) error {
		keys := ro.index[node]
		if len(keys) == 0 {
			if child, gone := ro.departed[node]; gone {
				return fmt.Errorf("%w: node %s belonged to detached domain %s", unify.ErrDomainUnavailable, node, child)
			}
			return nil
		}
		if gate == nil {
			return nil
		}
		var firstErr error
		for _, k := range keys {
			for _, child := range ro.dir.domains[k] {
				err := (*gate)(child)
				if err == nil {
					return nil
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: node %s: child %s: %v", unify.ErrDomainUnavailable, node, child, err)
				}
			}
		}
		return firstErr
	}
	for sapID := range req.SAPs {
		if err := check(sapID); err != nil {
			return err
		}
	}
	for _, id := range req.NFIDs() {
		if host := req.NFs[id].Host; host != "" {
			if err := check(host); err != nil {
				return err
			}
		}
	}
	return nil
}

// plannedReq is one accepted plan within a shard group.
type plannedReq struct {
	mapping *embed.Mapping
	subs    map[string]*nffg.NFFG
	touched []string // shard keys the mapping occupies (home first)
	home    string
}

// runGroup admits one shard group of the batch: the optimistic
// snapshot→map→commit loop over the group's shard set. keys == nil plans
// against every shard. When mayEscalate is set, plan rejections on a narrowed
// set are deferred to the caller's phase-2 global group instead of being
// final.
func (bc *batchRun) runGroup(ctx context.Context, idx []int, keys []string, mayEscalate bool) {
	ro := bc.ro
	// Re-scope the batch's positional trace set to this group's members: a
	// stage span recorded below lands in every member's trace.
	gctx := obs.Narrow(ctx, len(bc.reqs), idx)
	attempts := 0
	var mapSpan *obs.Span
	abortIdx := func(err error) {
		mapSpan.EndWith(err)
		for _, i := range idx {
			if bc.live[i] {
				bc.out[i].Attempts += attempts
				bc.abort(i, err)
			}
		}
	}

	plans := make(map[int]*plannedReq, len(idx))
	committed := false
	narrow := false
	var lastErr error
	var tshs []*shard
	for attempts < MaxMapAttempts {
		attempts++
		if err := ctx.Err(); err != nil {
			abortIdx(err)
			return
		}
		ro.stats.mapAttempts.Add(1)
		mapSpan, _ = obs.StartSpan(gctx, "orchestrator.map", "attempt", strconv.Itoa(attempts))
		mapStart := time.Now()
		dir, owner := ro.snapshotDir()
		gkeys := keys
		if gkeys == nil {
			gkeys = dir.keys
		}
		narrow = len(gkeys) < len(dir.keys)
		shs := dir.ordered(gkeys)
		if len(shs) == 0 {
			abortIdx(fmt.Errorf("%w: no domains attached", unify.ErrRejected))
			return
		}
		skeys := make([]string, len(shs))
		for i, s := range shs {
			skeys[i] = s.key
		}
		graphs, gens := snapshotCut(shs)

		// The group's working graph: a consistent merge of its shards. The
		// whole group shares ONE working copy — each accepted mapping is
		// realized on it in place (embed.ApplyTo), so admitting N requests
		// costs one graph copy instead of N. A full-DoV group plans on the
		// generation-keyed cut cache: between commits the merge is skipped
		// entirely and the group reads the same sealed cut every reader sees.
		var base *nffg.NFFG
		var mergeErr error
		switch {
		case len(shs) == 1:
			base = graphs[0]
		case !narrow:
			base, mergeErr = ro.mergedFromCut(graphs, genVec{keys: skeys, gens: gens})
		default:
			// Narrowed groups plan on the generation-keyed scoped cut cache:
			// a recurring shard subset skips nffg.Merge while none of its
			// members committed.
			base, mergeErr = ro.mergedFromScopedCut(graphs, genVec{keys: skeys, gens: gens})
		}
		if mergeErr != nil {
			log.Printf("core %s: merging shard snapshots: %v", ro.id, mergeErr)
			abortIdx(fmt.Errorf("%w: shard views unmergeable: %v", unify.ErrRejected, mergeErr))
			return
		}
		if base == nil {
			abortIdx(fmt.Errorf("%w: no domains attached", unify.ErrRejected))
			return
		}
		cur := base
		var accepted []*embed.Mapping
		rebuild := func() {
			// An ApplyTo failed partway and may have left cur inconsistent:
			// rebuild it by replaying the accepted mappings on a fresh copy
			// (deterministic — they applied cleanly before).
			cur = base.Copy()
			for _, mp := range accepted {
				if rerr := embed.ApplyTo(cur, mp); rerr != nil {
					log.Printf("core %s: batch replay inconsistency: %v", ro.id, rerr)
				}
			}
		}
		mappable := 0
		for _, i := range idx {
			if !bc.live[i] {
				continue
			}
			delete(plans, i)
			bc.planErr[i] = nil
			req := bc.reqs[i]
			mapping, err := ro.plan(cur, req)
			if err != nil {
				bc.planErr[i] = err
				continue
			}
			if cur == base {
				cur = base.Copy()
			}
			if err := embed.ApplyTo(cur, mapping); err != nil {
				bc.planErr[i] = fmt.Errorf("%w: %v", unify.ErrRejected, err)
				rebuild()
				continue
			}
			subs, err := ro.split(base, owner, req.ID, mapping)
			if err != nil {
				bc.planErr[i] = fmt.Errorf("%w: %v", unify.ErrRejected, err)
				// The mapping applied cleanly, so Release is its exact inverse.
				if rerr := embed.Release(cur, mapping); rerr != nil {
					log.Printf("core %s: releasing unsplittable mapping: %v", ro.id, rerr)
					rebuild()
				}
				continue
			}
			touched, home := touchedShards(mapping, owner, dir, skeys)
			plans[i] = &plannedReq{mapping: mapping, subs: subs, touched: touched, home: home}
			accepted = append(accepted, mapping)
			mappable++
		}
		ro.histMap.Observe(time.Since(mapStart))
		mapSpan.End()
		if mappable == 0 {
			// Nothing mappable on this snapshot. If a concurrent commit moved
			// one of the group's shards meanwhile the failures may be stale
			// (e.g. a Remove just freed the conflicting resources) — retry
			// fresh; otherwise they are final (or escalate to a global plan).
			if _, cgens := snapshotCut(shs); !equalGens(cgens, gens) {
				lastErr = fmt.Errorf("%w: DoV generation advanced during mapping", unify.ErrBusy)
				continue
			}
			bc.finalizeRejections(idx, attempts, mayEscalate && narrow)
			return
		}

		// Commit: lock the union of the touched shards in key order, validate
		// their generations against the snapshot cut, then swap every touched
		// shard's graph with a single generation bump each.
		tkeys := map[string]bool{}
		for _, i := range idx {
			if p, ok := plans[i]; ok && bc.live[i] {
				for _, k := range p.touched {
					tkeys[k] = true
				}
			}
		}
		var tkeyList []string
		for k := range tkeys {
			tkeyList = append(tkeyList, k)
		}
		sort.Strings(tkeyList)
		tshs = dir.ordered(tkeyList)
		genByKey := map[string]uint64{}
		for i, s := range shs {
			genByKey[s.key] = gens[i]
		}
		commitSpan, _ := obs.StartSpan(gctx, "orchestrator.commit", "shards", strconv.Itoa(len(tshs)))
		commitStart := time.Now()
		lockAll(tshs)
		conflict := false
		for _, s := range tshs {
			if s.gen != genByKey[s.key] {
				s.conflicts++
				conflict = true
			}
		}
		if conflict {
			unlockAll(tshs)
			// Lost the commit race; loop re-plans against the fresh cut.
			ro.stats.genConflicts.Add(1)
			lastErr = fmt.Errorf("%w: DoV generation advanced during mapping", unify.ErrBusy)
			commitSpan.EndWith(lastErr)
			continue
		}
		if len(shs) == 1 && len(tshs) == 1 && tshs[0] == shs[0] {
			// Single-shard fast path: the working copy IS the shard's next
			// snapshot (sealed: shard snapshots are shared by the read caches).
			tshs[0].dov = cur.Seal()
		} else {
			// Project each accepted mapping onto every touched shard's
			// copy-on-write graph; the home shard carries the bookkeeping.
			if err := bc.projectLocked(tshs, cur, idx, plans); err != nil {
				unlockAll(tshs)
				log.Printf("core %s: scoped commit projection failed: %v", ro.id, err)
				commitSpan.EndWith(err)
				abortIdx(fmt.Errorf("%w: commit projection failed: %v", unify.ErrRejected, err))
				return
			}
		}
		for _, s := range tshs {
			s.gen++
			s.commits++
			if len(tshs) > 1 {
				s.multi++
			}
		}
		// The epoch bump and journal appends stay inside the critical
		// section so every touched shard's record carries the epoch of THIS
		// commit and per-shard record order matches commit order.
		epoch := ro.bumpEpoch()
		if ro.journal != nil {
			bc.journalCommitLocked(tshs, epoch, idx, plans)
		}
		// Record each committed mapping in the service table before the
		// shard locks drop: the checkpointer reads shard graphs first and
		// the table second, so any graph state containing a commit must
		// already find its mapping in the table (see ShardSnapshots).
		ro.mu.Lock()
		for _, i := range idx {
			if p, ok := plans[i]; ok && bc.live[i] {
				bc.records[i].mapping = p.mapping
				bc.records[i].shards = p.touched
			}
		}
		ro.mu.Unlock()
		unlockAll(tshs)
		if len(tshs) > 1 {
			ro.stats.multiShard.Add(1)
		}
		ro.histCommit.Observe(time.Since(commitStart))
		commitSpan.End()
		committed = true
		break
	}
	if !committed {
		for _, i := range idx {
			if !bc.live[i] {
				continue
			}
			ro.stats.busy.Add(1)
			// Keep the request's own last rejection when it has one: a graph
			// that kept failing to map while the generation churned is more
			// usefully reported than the generic lost-race error.
			cause := lastErr
			if bc.planErr[i] != nil {
				cause = bc.planErr[i]
			}
			bc.out[i].Attempts += attempts
			bc.abort(i, fmt.Errorf("%w: gave up after %d mapping attempts (last: %v)", unify.ErrBusy, MaxMapAttempts, cause))
		}
		return
	}

	// The commit landed: group-local rejections are final (or escalate);
	// everyone else now holds a DoV reservation and must either deploy or
	// release it.
	var deployable []int
	for _, i := range idx {
		if !bc.live[i] {
			continue
		}
		if _, ok := plans[i]; !ok {
			if mayEscalate && narrow {
				bc.out[i].Attempts += attempts
				bc.escalate(i)
			} else {
				bc.out[i].Attempts += attempts
				bc.abort(i, bc.planErr[i])
			}
			continue
		}
		deployable = append(deployable, i)
	}
	ro.stats.batches.Add(1)
	ro.stats.batchedReqs.Add(uint64(len(deployable)))

	var wg sync.WaitGroup
	for _, i := range deployable {
		bc.out[i].Attempts += attempts
		if bc.obs.Admitted != nil {
			bc.obs.Admitted(i)
		}
		wg.Add(1)
		go func(i int, p *plannedReq) {
			defer wg.Done()
			defer bc.conclude(i)
			// Per-request deploy scope: narrow from the batch context (not
			// gctx — Narrow indices address the original positional set).
			dctx := obs.Narrow(ctx, len(bc.reqs), []int{i})
			children := sortedKeys(p.subs)
			receipts, err := ro.deployChildren(dctx, children, p.subs)
			if err != nil {
				if rerr := ro.releaseShards(bc.reqs[i].ID, p.mapping, p.touched); rerr != nil {
					log.Printf("core %s: releasing aborted install %s: %v", ro.id, bc.reqs[i].ID, rerr)
				}
				bc.abort(i, err)
				return
			}
			receipt := buildReceipt(bc.reqs[i].ID, p.mapping, children, receipts)
			childSubs := make(map[string][]string, len(children))
			ro.mu.Lock()
			rec := bc.records[i]
			rec.mapping = p.mapping
			rec.shards = p.touched
			for _, childID := range children {
				rec.children[childID] = append(rec.children[childID], p.subs[childID].ID)
				childSubs[childID] = append([]string(nil), rec.children[childID]...)
			}
			rec.receipt = receipt
			rec.state = stateReady
			ro.mu.Unlock()
			// The commit bump fired before the deploy finished, so a watcher
			// woken by it read Services() without this entry. Advance the
			// table version now that the service is northbound-visible so
			// watch streams get a fresh event carrying the completed list.
			ro.bumpTable()
			if ro.journal != nil {
				// Appended AFTER the table update: the checkpointer snapshots
				// the table, so everything a deployed record carries is
				// visible to any checkpoint taken after the append.
				err := ro.journal.LogDeployed(p.home, ro.epoch.Load(), journal.DeployedRecord{
					ServiceID: bc.reqs[i].ID, Children: childSubs, Receipt: receipt,
				})
				if err != nil {
					ro.stats.journalErrs.Add(1)
					log.Printf("core %s: journal deployed %s: %v", ro.id, bc.reqs[i].ID, err)
				}
			}
			bc.out[i].Receipt = receipt
			ro.stats.installs.Add(1)
		}(i, plans[i])
	}
	wg.Wait()
}

// finalizeRejections settles a group whose snapshot admitted nothing: either
// escalate every live member to the phase-2 global group, or make the
// rejections final.
func (bc *batchRun) finalizeRejections(idx []int, attempts int, escalate bool) {
	for _, i := range idx {
		if !bc.live[i] {
			continue
		}
		bc.out[i].Attempts += attempts
		if escalate {
			bc.escalate(i)
			continue
		}
		bc.abort(i, bc.planErr[i])
	}
}

// projectLocked replays the group's accepted mappings onto copies of the
// touched shards' graphs (callers hold every shard lock in tshs). Each shard
// receives exactly its slice of each mapping; the mapping's home shard also
// records the bookkeeping hop/requirement entries. Every projection is built
// before ANY shard pointer is swapped, so a failure leaves all shards
// untouched — a half-committed multi-shard group is impossible.
func (bc *batchRun) projectLocked(tshs []*shard, ref *nffg.NFFG, idx []int, plans map[int]*plannedReq) error {
	next := make([]*nffg.NFFG, len(tshs))
	for si, s := range tshs {
		g := nffg.New(bc.ro.id + "-dov")
		if s.dov != nil {
			g = s.dov.Copy()
		}
		for _, i := range idx {
			p, ok := plans[i]
			if !ok || !bc.live[i] {
				continue
			}
			mine := false
			for _, k := range p.touched {
				if k == s.key {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			if err := embed.ApplyScoped(g, ref, p.mapping, s.key == p.home); err != nil {
				return fmt.Errorf("shard %s, request %s: %w", s.key, bc.reqs[i].ID, err)
			}
		}
		next[si] = g
	}
	for si, s := range tshs {
		s.dov = next[si].Seal()
	}
	return nil
}

func equalGens(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mappingReceipt turns a mapping into the northbound deployment record
// (placements, hop paths, applied decompositions).
func mappingReceipt(serviceID string, mapping *embed.Mapping) *unify.Receipt {
	receipt := &unify.Receipt{
		ServiceID:      serviceID,
		Placements:     map[nffg.ID]nffg.ID{},
		HopPaths:       map[string][]string{},
		Decompositions: mapping.Applied,
	}
	for nf, host := range mapping.NFHost {
		receipt.Placements[nf] = host
	}
	for hid, p := range mapping.Paths {
		var nodes []string
		for _, n := range p.Nodes {
			nodes = append(nodes, string(n))
		}
		receipt.HopPaths[hid] = nodes
	}
	return receipt
}

// buildReceipt assembles the recursive deployment record of one request.
func buildReceipt(serviceID string, mapping *embed.Mapping, children []string, childReceipts []*unify.Receipt) *unify.Receipt {
	receipt := mappingReceipt(serviceID, mapping)
	receipt.Children = map[string]*unify.Receipt{}
	for i, childID := range children {
		receipt.Children[childID] = childReceipts[i]
	}
	return receipt
}

// deployChildren installs the per-child sub-requests in parallel goroutines.
// The first failure cancels the context handed to the siblings, already
// deployed children are rolled back, and the first (root-cause) error is
// returned.
func (ro *ResourceOrchestrator) deployChildren(ctx context.Context, children []string, subs map[string]*nffg.NFFG) ([]*unify.Receipt, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	receipts := make([]*unify.Receipt, len(children))
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, childID := range children {
		wg.Add(1)
		go func(i int, childID string) {
			defer wg.Done()
			span, sctx := obs.StartSpan(cctx, "deploy.child", "child", childID)
			d, err := ro.reg.Get(childID)
			switch {
			case errors.Is(err, domain.ErrUnknown):
				// The child detached between commit and fan-out.
				err = fmt.Errorf("%w: child %s is not attached", unify.ErrDomainUnavailable, childID)
			case err == nil:
				if gerr := ro.gateErr(childID); gerr != nil {
					err = gerr
				} else {
					receipts[i], err = d.Install(sctx, subs[childID])
				}
			}
			span.EndWith(err)
			if err != nil {
				errs[i] = err
				cancel() // first error cancels the sibling deploys
			}
		}(i, childID)
	}
	wg.Wait()
	firstErr := pickRootCause(children, errs)
	if firstErr == nil {
		return receipts, nil
	}
	// Roll back whatever landed, in parallel, detached from the canceled
	// deploy context so teardown still runs after a northbound cancellation.
	rctx := context.WithoutCancel(ctx)
	var rb sync.WaitGroup
	for i, childID := range children {
		if receipts[i] == nil || errs[i] != nil {
			continue
		}
		rb.Add(1)
		go func(childID, subID string) {
			defer rb.Done()
			d, err := ro.reg.Get(childID)
			if err != nil {
				log.Printf("core %s: rollback of %s: %v", ro.id, subID, err)
				return
			}
			if rerr := d.Remove(rctx, subID); rerr != nil {
				log.Printf("core %s: rollback of %s on %s failed: %v", ro.id, subID, childID, rerr)
			}
		}(childID, subs[childID].ID)
	}
	rb.Wait()
	return nil, firstErr
}

// pickRootCause selects the error to surface from a fan-out: the first
// non-cancellation child error (the root cause) if any, wrapped in
// ErrRejected. A purely-canceled fan-out keeps the context error identity
// (errors.Is(err, context.Canceled) holds) instead of claiming rejection.
func pickRootCause(children []string, errs []error) error {
	var first error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = fmt.Errorf("core: child %s canceled: %w", children[i], err)
		}
		if errors.Is(err, unify.ErrDomainUnavailable) {
			// Keep the typed identity: the caller (and the northbound jobs
			// API) distinguishes an unavailable domain from a rejection.
			return err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("%w: child %s rejected: %v", unify.ErrRejected, children[i], err)
		}
	}
	return first
}

// releaseShards returns a mapping's resources to the shards it occupies
// (copy-on-write: each shard's release runs on a copy that replaces the
// current snapshot under the shard's lock; the shards are locked together in
// key order so the release is observed atomically).
func (ro *ResourceOrchestrator) releaseShards(serviceID string, mp *embed.Mapping, keys []string) error {
	dir, _ := ro.snapshotDir()
	shs := dir.ordered(keys)
	if len(shs) == 0 {
		return nil
	}
	var firstErr error
	lockAll(shs)
	epoch := ro.bumpEpoch()
	for _, s := range shs {
		if s.dov != nil {
			next := s.dov.Copy()
			if err := embed.Release(next, mp); err == nil {
				s.dov = next.Seal()
			} else if firstErr == nil {
				firstErr = err
			}
		}
		// Bump the generation either way so optimistic mappers re-read.
		s.gen++
		s.commits++
		if len(shs) > 1 {
			s.multi++
		}
		if ro.journal != nil {
			if err := ro.journal.LogRelease(s.key, s.gen, epoch, []string{serviceID}); err != nil {
				ro.stats.journalErrs.Add(1)
				log.Printf("core %s: journal release %s on %s: %v", ro.id, serviceID, s.key, err)
			} else {
				s.journalRecs++
			}
		}
	}
	unlockAll(shs)
	return firstErr
}

// Remove implements unify.Layer. Child teardowns fan out in parallel;
// teardown is best-effort (siblings are not canceled on error), the first
// error is reported, and a failed Remove keeps the service removable: the
// record and DoV reservation are dropped only once every child teardown
// succeeded, and retries tolerate children already gone.
func (ro *ResourceOrchestrator) Remove(ctx context.Context, serviceID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ro.mu.Lock()
	rec, ok := ro.services[serviceID]
	if !ok {
		ro.mu.Unlock()
		return fmt.Errorf("%w: %s", unify.ErrUnknownService, serviceID)
	}
	if rec.state != stateReady {
		ro.mu.Unlock()
		return fmt.Errorf("%w: service %s has an operation in flight", unify.ErrBusy, serviceID)
	}
	rec.state = stateRemoving
	ro.mu.Unlock()

	children := sortedKeys(rec.children)
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, childID := range children {
		wg.Add(1)
		go func(i int, childID string) {
			defer wg.Done()
			d, err := ro.reg.Get(childID)
			if err != nil {
				// A child missing from the registry was detached at runtime:
				// its sub-services died with the domain, so teardown there is
				// already done and the DoV release below must still run.
				if !errors.Is(err, domain.ErrUnknown) {
					errs[i] = err
				}
				return
			}
			for _, subID := range rec.children[childID] {
				err := d.Remove(ctx, subID)
				// A child that no longer knows the sub-service was torn down
				// by an earlier partially-failed Remove: retries treat it as
				// done.
				if err != nil && !errors.Is(err, unify.ErrUnknownService) && errs[i] == nil {
					errs[i] = fmt.Errorf("core: remove %s on %s: %w", subID, childID, err)
				}
			}
		}(i, childID)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Partial teardown: keep the record (and the DoV reservation, since
		// children may still hold resources) so the caller can retry.
		ro.mu.Lock()
		rec.state = stateReady
		ro.mu.Unlock()
		return firstErr
	}
	if err := ro.releaseShards(serviceID, rec.mapping, rec.shards); err != nil {
		firstErr = err
	}
	ro.mu.Lock()
	ro.dropReservationsLocked(serviceID, rec)
	ro.mu.Unlock()
	// releaseShards bumped before the record dropped; watchers woken there
	// could still list the service. Advance the table version so the stream
	// converges on the post-removal service table.
	ro.bumpTable()
	return firstErr
}

// Services implements unify.Layer. Pending installs are not listed: a service
// exists northbound only once its Install returned.
func (ro *ResourceOrchestrator) Services() []string {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	out := make([]string, 0, len(ro.services))
	for id, rec := range ro.services {
		if rec.state == statePending {
			continue
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Capabilities lets an orchestrator act as a native domain of a parent.
func (ro *ResourceOrchestrator) Capabilities() []domain.Capability {
	return []domain.Capability{domain.CapCompute, domain.CapForwarding, domain.CapNative}
}

// split turns a mapping over a DoV snapshot into per-child sub-requests: each
// child receives the NFs placed on its nodes (pinned) plus the hop segments
// that run inside it. Hop paths are cut at border SAPs and at links between
// nodes of different children.
func (ro *ResourceOrchestrator) split(snap *nffg.NFFG, owner map[nffg.ID]string, serviceID string, mp *embed.Mapping) (map[string]*nffg.NFFG, error) {
	subs := map[string]*nffg.NFFG{}
	getSub := func(child string) *nffg.NFFG {
		if s, ok := subs[child]; ok {
			return s
		}
		s := nffg.New(fmt.Sprintf("%s#%s", serviceID, child))
		subs[child] = s
		return s
	}
	// NFs.
	for _, nfID := range mp.Request.NFIDs() {
		nf := mp.Request.NFs[nfID]
		host := mp.NFHost[nfID]
		child, ok := owner[host]
		if !ok {
			return nil, fmt.Errorf("core: DoV node %s has no owning child", host)
		}
		sub := getSub(child)
		c := &nffg.NF{
			ID: nfID, Name: nf.Name, FunctionalType: nf.FunctionalType,
			DeployType: nf.DeployType, Demand: nf.Demand, Host: host,
		}
		for _, p := range nf.Ports {
			cp := *p
			c.Ports = append(c.Ports, &cp)
		}
		if err := sub.AddNF(c); err != nil {
			return nil, err
		}
	}
	// Hop segments.
	for _, h := range mp.Request.Hops {
		p := mp.Paths[h.ID]
		segments, err := segment(owner, h, p)
		if err != nil {
			return nil, err
		}
		for _, seg := range segments {
			sub := getSub(seg.child)
			ensureSAPs(sub, snap, seg)
			hop := &nffg.SGHop{
				ID:        seg.id,
				SrcNode:   seg.srcNode,
				SrcPort:   seg.srcPort,
				DstNode:   seg.dstNode,
				DstPort:   seg.dstPort,
				Bandwidth: h.Bandwidth,
				// Border segments must classify on the true end-to-end
				// destination, not the border SAP the segment stops at.
				FlowDst: chainFlowDst(mp.Request, h),
			}
			if err := sub.AddHop(hop); err != nil {
				return nil, err
			}
		}
	}
	return subs, nil
}

// segment describes one intra-child piece of a hop.
type segmentInfo struct {
	child            string
	id               string
	srcNode, dstNode nffg.ID
	srcPort, dstPort string
}

// segment cuts one hop's DoV path into child-local pieces. Border SAPs (SAP
// nodes in the middle of a path) are the cut points; they appear as SAP
// endpoints in both adjacent children.
func segment(owner map[nffg.ID]string, h *nffg.SGHop, p topo.Path) ([]segmentInfo, error) {
	// Resolve which child each path node belongs to; SAPs resolve to "".
	childOf := func(n topo.NodeID) string { return owner[nffg.ID(n)] }
	// Single-node path (co-located endpoints) or single-child path.
	var segs []segmentInfo
	curChild := ""
	segSrcNode, segSrcPort := h.SrcNode, h.SrcPort
	idx := 1
	flush := func(dstNode nffg.ID, dstPort string) {
		if curChild == "" {
			return
		}
		segs = append(segs, segmentInfo{
			child: curChild, id: fmt.Sprintf("%s#%d", h.ID, idx),
			srcNode: segSrcNode, srcPort: segSrcPort,
			dstNode: dstNode, dstPort: dstPort,
		})
		idx++
	}
	for i, n := range p.Nodes {
		c := childOf(n)
		if c == "" {
			// SAP node: terminal or border cut point.
			if i == 0 || i == len(p.Nodes)-1 {
				continue
			}
			flush(nffg.ID(n), "1")
			curChild = ""
			segSrcNode, segSrcPort = nffg.ID(n), "1"
			continue
		}
		if curChild == "" {
			curChild = c
			continue
		}
		if c != curChild {
			// Direct inter-child link without a border SAP is not supported:
			// children must be stitched via shared SAPs.
			return nil, fmt.Errorf("core: hop %s crosses %s->%s without a border SAP", h.ID, curChild, c)
		}
	}
	flush(h.DstNode, h.DstPort)
	if len(segs) == 1 {
		segs[0].id = h.ID // single-child hops keep their original ID
	}
	if len(segs) == 0 {
		// Pure SAP-to-SAP path with no infra (degenerate); nothing to deploy.
		return nil, nil
	}
	return segs, nil
}

// ensureSAPs copies any SAP endpoints a segment references into the
// sub-request so it validates standalone.
func ensureSAPs(sub *nffg.NFFG, dov *nffg.NFFG, seg segmentInfo) {
	for _, n := range []nffg.ID{seg.srcNode, seg.dstNode} {
		if s, ok := dov.SAPs[n]; ok {
			if _, have := sub.SAPs[n]; !have {
				p := *s.Port
				_ = sub.AddSAP(&nffg.SAP{ID: n, Name: s.Name, Port: &p})
			}
		}
	}
}

// chainFlowDst resolves the terminal SAP of the chain containing h within
// the request (mirrors the walk the embedding layer performs).
func chainFlowDst(req *nffg.NFFG, h *nffg.SGHop) nffg.ID {
	if h.FlowDst != "" {
		return h.FlowDst
	}
	cur := h
	for steps := 0; steps <= len(req.Hops); steps++ {
		if _, ok := req.SAPs[cur.DstNode]; ok {
			return cur.DstNode
		}
		var next *nffg.SGHop
		for _, cand := range req.Hops {
			if cand.SrcNode == cur.DstNode {
				next = cand
				break
			}
		}
		if next == nil {
			return ""
		}
		cur = next
	}
	return ""
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/unify-repro/escape/internal/journal"
	"github.com/unify-repro/escape/internal/nffg"
)

// graphBytes renders a graph through its deterministic JSON encoding, so two
// graphs can be compared byte-for-byte.
func graphBytes(t testing.TB, g *nffg.NFFG) []byte {
	t.Helper()
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// journaledMesh is meshROCfg with a write-ahead journal in dir, returning the
// leaf orchestrators too so a recovered control plane can Reattach them.
func journaledMesh(t testing.TB, dir string, n, slots int) (*ResourceOrchestrator, *journal.Store, []*LocalOrchestrator) {
	t.Helper()
	st, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ro := NewResourceOrchestrator(Config{ID: "ro", Journal: st})
	leaves := make([]*LocalOrchestrator, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("d%d", i)
		node := nffg.ID(name + "-n")
		bl := nffg.NewBuilder(name).
			BiSBiS(node, name, 2+2*slots, res(1<<16, 1<<24), "fw", "dpi", "nat")
		port := 1
		if i > 0 {
			left := nffg.ID(fmt.Sprintf("x%d", i-1))
			bl.SAP(left).Link("bl", left, "1", node, fmt.Sprint(port), 1e6, 1)
			port++
		}
		if i < n-1 {
			right := nffg.ID(fmt.Sprintf("x%d", i))
			bl.SAP(right).Link("br", node, fmt.Sprint(port), right, "1", 1e6, 1)
			port++
		}
		for j := 0; j < slots; j++ {
			in := nffg.ID(fmt.Sprintf("d%d-u%din", i, j))
			out := nffg.ID(fmt.Sprintf("d%d-u%dout", i, j))
			bl.SAP(in).Link(fmt.Sprintf("ui%d", j), in, "1", node, fmt.Sprint(port), 1e6, 1)
			port++
			bl.SAP(out).Link(fmt.Sprintf("uo%d", j), node, fmt.Sprint(port), out, "1", 1e6, 1)
			port++
		}
		lo, err := NewLocalOrchestrator(LocalConfig{ID: name, Substrate: bl.MustBuild()})
		if err != nil {
			t.Fatal(err)
		}
		if err := ro.Attach(context.Background(), lo); err != nil {
			t.Fatal(err)
		}
		leaves[i] = lo
	}
	return ro, st, leaves
}

// crashRecover simulates the kill -9 aftermath: the store was abandoned
// WITHOUT Close (matching a process that died mid-write — appends are already
// in the files, nothing gets a final sync), the journal is recovered, and a
// fresh orchestrator restores from it.
func crashRecover(t testing.TB, dir string) (*ResourceOrchestrator, *journal.RecoveredState, *journal.Info) {
	t.Helper()
	state, info, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	ro := NewResourceOrchestrator(Config{ID: "ro"})
	if err := ro.Restore(state); err != nil {
		t.Fatal(err)
	}
	return ro, state, info
}

// TestCrashRecoveryCommitStorm is the payoff test of the durability plane:
// a concurrent install/remove storm against a journaled orchestrator, a
// simulated kill -9 (store abandoned un-Closed, garbage appended to a log
// tail), then recovery — which must reproduce the surviving services, the
// shard graphs byte-for-byte, and tear back down to a clean substrate.
func TestCrashRecoveryCommitStorm(t *testing.T) {
	const n = 24
	dir := t.TempDir()
	ro, _, leaves := journaledMesh(t, dir, 2, n)

	baseline := graphBytes(t, mustDoV(t, ro))

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("svc%02d", i)
			var req *nffg.NFFG
			switch i % 3 {
			case 0: // d0 only
				req = slotChain(t, id, 0, i)
			case 1: // d1 only
				req = slotChain(t, id, 1, i)
			default: // cross-domain two-phase commit
				req = crossChain(t, id, 0, i)
			}
			if _, err := ro.Install(context.Background(), req); err != nil {
				errs[i] = err
				return
			}
			// Every 4th service is removed again mid-storm: release records
			// must replay too.
			if i%4 == 0 {
				errs[i] = ro.Remove(context.Background(), id)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("storm op %d: %v", i, err)
		}
	}

	liveServices := ro.Services()
	liveSnaps := ro.ShardSnapshots()
	if len(liveServices) != n-n/4 {
		t.Fatalf("live services: %d, want %d", len(liveServices), n-n/4)
	}

	// kill -9: no Close, no final sync — and the crash tore the tail of one
	// shard's newest segment.
	seg := filepath.Join(dir, "shards", "d0", "wal-000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("UJR1\x40\x00\x00\x00garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ro2, _, info := crashRecover(t, dir)
	if !info.Recovered {
		t.Fatal("nothing recovered")
	}
	if info.TornTails != 1 {
		t.Fatalf("torn tails: %d, want 1", info.TornTails)
	}
	if len(info.Errors) != 0 {
		t.Fatalf("replay errors: %v", info.Errors)
	}

	// Zero committed mappings lost: the recovered service set matches the
	// live one, receipts included.
	recServices := ro2.Services()
	if len(recServices) != len(liveServices) {
		t.Fatalf("recovered %d services, live had %d:\n%v\nvs\n%v",
			len(recServices), len(liveServices), recServices, liveServices)
	}
	for i := range liveServices {
		if recServices[i] != liveServices[i] {
			t.Fatalf("service sets differ: %v vs %v", recServices, liveServices)
		}
	}
	receipts := ro2.ServiceReceipts()
	for _, id := range liveServices {
		if receipts[id] == nil {
			t.Fatalf("service %s recovered without a receipt", id)
		}
	}

	// Shard graphs replay byte-for-byte: same allocations, same topology.
	recSnaps := ro2.ShardSnapshots()
	if len(recSnaps) != len(liveSnaps) {
		t.Fatalf("shards: %d vs %d", len(recSnaps), len(liveSnaps))
	}
	for i := range liveSnaps {
		if recSnaps[i].Key != liveSnaps[i].Key || recSnaps[i].Gen != liveSnaps[i].Gen {
			t.Fatalf("shard %s: gen %d vs %s gen %d",
				recSnaps[i].Key, recSnaps[i].Gen, liveSnaps[i].Key, liveSnaps[i].Gen)
		}
		got, want := graphBytes(t, recSnaps[i].Graph), graphBytes(t, liveSnaps[i].Graph)
		if !bytes.Equal(got, want) {
			t.Fatalf("shard %s graph diverged after replay:\n%s\nvs\n%s", recSnaps[i].Key, got, want)
		}
	}

	// Reattach the (still running) children and tear everything down: the
	// recovered book must be good enough to free every allocation.
	for _, lo := range leaves {
		if err := ro2.Reattach(context.Background(), lo); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range recServices {
		if err := ro2.Remove(context.Background(), id); err != nil {
			t.Fatalf("remove %s after recovery: %v", id, err)
		}
	}
	if got := graphBytes(t, mustDoV(t, ro2)); !bytes.Equal(got, baseline) {
		t.Fatalf("DoV after full teardown differs from pre-storm baseline:\n%s\nvs\n%s", got, baseline)
	}
}

// TestCrashRecoveryWithCheckpoint runs installs with checkpoints taken
// mid-flight: recovery folds checkpoint + WAL tail and must reach the same
// state a pure-WAL replay would.
func TestCrashRecoveryWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ro, st, _ := journaledMesh(t, dir, 2, 9)

	install := func(i int) {
		id := fmt.Sprintf("ck%02d", i)
		if _, err := ro.Install(context.Background(), crossChain(t, id, 0, i)); err != nil {
			t.Fatalf("install %s: %v", id, err)
		}
	}
	for i := 0; i < 4; i++ {
		install(i)
	}
	if err := st.Checkpoint(ro.ShardSnapshots); err != nil {
		t.Fatal(err)
	}
	if err := ro.Remove(context.Background(), "ck00"); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		install(i)
	}
	if err := st.Checkpoint(ro.ShardSnapshots); err != nil {
		t.Fatal(err)
	}
	install(8)

	liveSnaps := ro.ShardSnapshots()
	liveServices := ro.Services()

	ro2, _, info := crashRecover(t, dir) // no Close: crash after last install
	if info.CheckpointsLoaded == 0 {
		t.Fatal("recovery ignored the checkpoints")
	}
	recServices := ro2.Services()
	if len(recServices) != len(liveServices) {
		t.Fatalf("recovered %v, want %v", recServices, liveServices)
	}
	recSnaps := ro2.ShardSnapshots()
	for i := range liveSnaps {
		if recSnaps[i].Gen != liveSnaps[i].Gen {
			t.Fatalf("shard %s gen %d, want %d", recSnaps[i].Key, recSnaps[i].Gen, liveSnaps[i].Gen)
		}
		if !bytes.Equal(graphBytes(t, recSnaps[i].Graph), graphBytes(t, liveSnaps[i].Graph)) {
			t.Fatalf("shard %s graph diverged (checkpoint fold)", recSnaps[i].Key)
		}
	}
}

// TestRestoreRejectsNonEmpty pins the restore precondition.
func TestRestoreRejectsNonEmpty(t *testing.T) {
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	err := ro.Restore(&journal.RecoveredState{
		Shards: []journal.RecoveredShard{{Key: "x", Gen: 1}},
		Epoch:  1,
	})
	if err == nil {
		t.Fatal("Restore on a populated orchestrator must refuse")
	}
}

// TestReattachUnknownChildFallsThrough pins Reattach's attach fallback: a
// child the journal never saw attaches normally (view merged once).
func TestReattachUnknownChildFallsThrough(t *testing.T) {
	ro := NewResourceOrchestrator(Config{ID: "ro"})
	lo := leafDomain(t, "domZ", "sapZ", "b-z", &recordingProgrammer{})
	if err := ro.Reattach(context.Background(), lo); err != nil {
		t.Fatal(err)
	}
	dov := mustDoV(t, ro)
	if len(dov.Infras) != 1 {
		t.Fatalf("fallback attach did not merge the view: %s", dov.Summary())
	}
}

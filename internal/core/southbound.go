package core

import (
	"sync/atomic"
	"time"

	"github.com/unify-repro/escape/internal/obs"
)

// SouthboundStats count the device-programming half of the control plane:
// what left the orchestrator toward real dataplanes (flow-mods, barriers,
// NETCONF RPCs, container operations) and what it cost. The interesting
// ratios are FlowMods/Barriers (pipelining amortization — equals the delta
// size when the southbound path batches perfectly, 1 when it is serialized)
// and NetconfRPCs/Deltas (1 when a delta's edits coalesce into one RPC).
type SouthboundStats struct {
	// Deltas counts committed device-programming deltas.
	Deltas uint64 `json:"deltas"`
	// FlowMods counts OpenFlow flow modification messages sent.
	FlowMods uint64 `json:"flow_mods"`
	// Barriers counts OpenFlow barrier round-trips.
	Barriers uint64 `json:"barriers"`
	// WindowHighWater is the maximum un-barriered in-flight flow-mods
	// observed on any single datapath pipeline.
	WindowHighWater uint64 `json:"window_high_water"`
	// NetconfRPCs counts NETCONF RPC round-trips.
	NetconfRPCs uint64 `json:"netconf_rpcs"`
	// ContainerOps counts container runtime operations (create/start/stop/
	// remove on the UN, server boots/deletes on OpenStack).
	ContainerOps uint64 `json:"container_ops"`
	// LatencyTotalNS/LatencyMaxNS accumulate per-delta southbound wall-clock
	// (the time from entering a Programmer's Commit to its return).
	LatencyTotalNS uint64 `json:"latency_total_ns"`
	LatencyMaxNS   uint64 `json:"latency_max_ns"`
	// DeltaLatency is the per-delta southbound wall-clock distribution
	// (power-of-two buckets), mergeable up the orchestrator hierarchy like
	// the scalar counters.
	DeltaLatency obs.HistogramSnapshot `json:"delta_latency"`
}

// MeanDeltaLatency is the mean southbound wall-clock per delta.
func (s SouthboundStats) MeanDeltaLatency() time.Duration {
	if s.Deltas == 0 {
		return 0
	}
	return time.Duration(s.LatencyTotalNS / s.Deltas)
}

// FlowModsPerBarrier is the pipelining amortization ratio: how many rules
// each barrier round-trip paid for. 1.0 means fully serialized programming.
func (s SouthboundStats) FlowModsPerBarrier() float64 {
	if s.Barriers == 0 {
		return 0
	}
	return float64(s.FlowMods) / float64(s.Barriers)
}

// MaxDeltaLatency is the worst southbound wall-clock seen for one delta.
func (s SouthboundStats) MaxDeltaLatency() time.Duration {
	return time.Duration(s.LatencyMaxNS)
}

// Merge folds another snapshot into s (sums for counters, max for the
// high-water and worst-case marks) — how an orchestrator aggregates its
// children.
func (s *SouthboundStats) Merge(o SouthboundStats) {
	s.Deltas += o.Deltas
	s.FlowMods += o.FlowMods
	s.Barriers += o.Barriers
	s.NetconfRPCs += o.NetconfRPCs
	s.ContainerOps += o.ContainerOps
	s.LatencyTotalNS += o.LatencyTotalNS
	s.DeltaLatency.Merge(o.DeltaLatency)
	if o.WindowHighWater > s.WindowHighWater {
		s.WindowHighWater = o.WindowHighWater
	}
	if o.LatencyMaxNS > s.LatencyMaxNS {
		s.LatencyMaxNS = o.LatencyMaxNS
	}
}

// SouthboundRecorder is the atomic backing Programmers record into while a
// delta is being applied. Safe for concurrent use (parallel per-datapath
// fan-out records from many goroutines).
type SouthboundRecorder struct {
	deltas, flowMods, barriers, windowHW atomic.Uint64
	netconfRPCs, containerOps            atomic.Uint64
	latencyTotal, latencyMax             atomic.Uint64
	deltaHist                            obs.Histogram
}

// AddFlowMods counts n flow-mods sent.
func (r *SouthboundRecorder) AddFlowMods(n uint64) { r.flowMods.Add(n) }

// AddBarriers counts n barrier round-trips.
func (r *SouthboundRecorder) AddBarriers(n uint64) { r.barriers.Add(n) }

// AddNetconfRPCs counts n NETCONF RPC round-trips.
func (r *SouthboundRecorder) AddNetconfRPCs(n uint64) { r.netconfRPCs.Add(n) }

// AddContainerOps counts n container runtime operations.
func (r *SouthboundRecorder) AddContainerOps(n uint64) { r.containerOps.Add(n) }

// ObserveWindow raises the in-flight high-water mark to hw if higher.
func (r *SouthboundRecorder) ObserveWindow(hw uint64) {
	for {
		cur := r.windowHW.Load()
		if hw <= cur || r.windowHW.CompareAndSwap(cur, hw) {
			return
		}
	}
}

// ObserveDelta records one completed delta and its southbound wall-clock.
func (r *SouthboundRecorder) ObserveDelta(d time.Duration) {
	r.deltas.Add(1)
	r.deltaHist.Observe(d)
	ns := uint64(d.Nanoseconds())
	r.latencyTotal.Add(ns)
	for {
		cur := r.latencyMax.Load()
		if ns <= cur || r.latencyMax.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot returns the current counters.
func (r *SouthboundRecorder) Snapshot() SouthboundStats {
	return SouthboundStats{
		Deltas:          r.deltas.Load(),
		FlowMods:        r.flowMods.Load(),
		Barriers:        r.barriers.Load(),
		WindowHighWater: r.windowHW.Load(),
		NetconfRPCs:     r.netconfRPCs.Load(),
		ContainerOps:    r.containerOps.Load(),
		LatencyTotalNS:  r.latencyTotal.Load(),
		LatencyMaxNS:    r.latencyMax.Load(),
		DeltaLatency:    r.deltaHist.Snapshot(),
	}
}

// SouthboundStatsProvider is any layer exposing southbound counters. Leaf
// domains (whose Programmers record) and resource orchestrators (which
// aggregate their children) both implement it.
type SouthboundStatsProvider interface {
	SouthboundStats() SouthboundStats
}

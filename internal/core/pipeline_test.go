package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// slowProgrammer simulates device-programming latency (NETCONF round trips,
// VM boots). It honors context cancellation mid-wait and can be told to fail
// installs whose NF IDs carry a prefix.
type slowProgrammer struct {
	delay   time.Duration
	failPfx string
	commits int32
	mu      sync.Mutex
}

func (p *slowProgrammer) Commit(ctx context.Context, d *nffg.Delta, _ *nffg.NFFG) error {
	select {
	case <-time.After(p.delay):
	case <-ctx.Done():
		return ctx.Err()
	}
	p.mu.Lock()
	p.commits++
	p.mu.Unlock()
	if p.failPfx != "" {
		for _, nf := range d.AddNFs {
			if len(nf.ID) >= len(p.failPfx) && string(nf.ID[:len(p.failPfx)]) == p.failPfx {
				return errors.New("slowProgrammer: induced failure")
			}
		}
	}
	return nil
}

// lineRO builds n leaf domains in a line — sap1 - d0 - b0 - d1 - b1 ... -
// sap2 — each with the given programmer latency, under one resource
// orchestrator. Returns the RO and the leaves.
func lineRO(t testing.TB, n int, delay time.Duration, progs map[int]Programmer) (*ResourceOrchestrator, []*LocalOrchestrator) {
	t.Helper()
	return lineROCfg(t, n, delay, progs, Config{ID: "ro"})
}

// lineROWith is lineRO with an explicit orchestrator Config (and no
// per-domain programmer latency).
func lineROWith(t testing.TB, n int, cfg Config) (*ResourceOrchestrator, []*LocalOrchestrator) {
	t.Helper()
	return lineROCfg(t, n, 0, nil, cfg)
}

func lineROCfg(t testing.TB, n int, delay time.Duration, progs map[int]Programmer, cfg Config) (*ResourceOrchestrator, []*LocalOrchestrator) {
	t.Helper()
	var los []*LocalOrchestrator
	ro := NewResourceOrchestrator(cfg)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("d%d", i)
		left := nffg.ID(fmt.Sprintf("b%d", i-1))
		if i == 0 {
			left = "sap1"
		}
		right := nffg.ID(fmt.Sprintf("b%d", i))
		if i == n-1 {
			right = "sap2"
		}
		sub := nffg.NewBuilder(name).
			BiSBiS(nffg.ID(name+"-n"), name, 4, res(16, 8192), "fw", "dpi", "nat", "compress").
			SAP(left).SAP(right).
			Link("l", left, "1", nffg.ID(name+"-n"), "1", 1000, 1).
			Link("r", nffg.ID(name+"-n"), "2", right, "1", 1000, 1).
			MustBuild()
		prog := progs[i]
		if prog == nil {
			prog = &slowProgrammer{delay: delay}
		}
		lo, err := NewLocalOrchestrator(LocalConfig{ID: name, Substrate: sub, Programmer: prog})
		if err != nil {
			t.Fatal(err)
		}
		if err := ro.Attach(context.Background(), lo); err != nil {
			t.Fatal(err)
		}
		los = append(los, lo)
	}
	return ro, los
}

// spanReq builds a chain sap1 -> nf@d0 -> nf@d1 -> ... -> sap2 pinning one NF
// into every domain, so one install fans out to every child.
func spanReq(t testing.TB, id string, n int) *nffg.NFFG {
	t.Helper()
	types := []string{"fw", "dpi", "nat", "compress"}
	b := nffg.NewBuilder(id).SAP("sap1").SAP("sap2")
	nodes := []nffg.ID{"sap1"}
	for i := 0; i < n; i++ {
		nf := nffg.ID(fmt.Sprintf("%s-nf%d", id, i))
		b.NF(nf, types[i%len(types)], 2, res(2, 512))
		nodes = append(nodes, nf)
	}
	nodes = append(nodes, "sap2")
	b.Chain(id, 5, 0, nodes...)
	g := b.MustBuild()
	for i := 0; i < n; i++ {
		g.NFs[nffg.ID(fmt.Sprintf("%s-nf%d", id, i))].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", i))
	}
	return g
}

// TestParallelChildDeploy verifies the tentpole claim: with an artificial
// child-install latency over 4 domains, a single install that spans all four
// completes in ~1 child latency, not 4x — the fan-out is parallel.
func TestParallelChildDeploy(t *testing.T) {
	const domains = 4
	const delay = 50 * time.Millisecond
	ro, los := lineRO(t, domains, delay, nil)

	start := time.Now()
	receipt, err := ro.Install(context.Background(), spanReq(t, "span", domains))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(receipt.Children) != domains {
		t.Fatalf("expected %d child receipts, got %d", domains, len(receipt.Children))
	}
	// Sequential deployment would take >= 4*delay = 200ms. Allow generous
	// headroom over one delay for mapping and scheduling noise.
	if elapsed >= 3*delay {
		t.Fatalf("install took %v; children deployed sequentially? (1 child latency = %v)", elapsed, delay)
	}
	for _, lo := range los {
		if len(lo.Services()) != 1 {
			t.Fatalf("child %s has %d services", lo.ID(), len(lo.Services()))
		}
	}

	// Removal fans out in parallel too.
	start = time.Now()
	if err := ro.Remove(context.Background(), "span"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 3*delay {
		t.Fatalf("remove took %v; teardown fan-out not parallel", elapsed)
	}
	for _, lo := range los {
		if len(lo.Services()) != 0 {
			t.Fatalf("child %s not cleaned up", lo.ID())
		}
	}
}

// TestConcurrentIndependentInstalls runs N independent services (each pinned
// into its own domain) from N goroutines. All must succeed — losers of the
// optimistic commit race re-map against the fresh DoV generation — and the
// batch must complete in far less than the sum of child latencies.
func TestConcurrentIndependentInstalls(t *testing.T) {
	const domains = 4
	const delay = 50 * time.Millisecond
	ro, los := lineRO(t, domains, delay, nil)
	baseGen := ro.Generation()

	var wg sync.WaitGroup
	errs := make([]error, domains)
	start := time.Now()
	for i := 0; i < domains; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A chain living entirely inside domain i: its SAP endpoints are
			// the domain's border/user SAPs.
			left, right := fmt.Sprintf("b%d", i-1), fmt.Sprintf("b%d", i)
			if i == 0 {
				left = "sap1"
			}
			if i == domains-1 {
				right = "sap2"
			}
			id := fmt.Sprintf("svc%d", i)
			req := chainReq(t, id, nffg.ID(left), nffg.ID(right), "fw")
			req.NFs[nffg.ID(id+"-nf")].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", i))
			_, errs[i] = ro.Install(context.Background(), req)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	// Serialized installs (the old single-mutex path) would need >= 4*delay.
	if elapsed >= 3*delay {
		t.Fatalf("batch took %v; installs serialized (1 child latency = %v)", elapsed, delay)
	}
	// Every commit bumped the generation exactly once: the losers re-mapped
	// instead of clobbering each other's reservations.
	if got := ro.Generation() - baseGen; got != domains {
		t.Fatalf("generation advanced by %d, want %d", got, domains)
	}
	if got := len(ro.Services()); got != domains {
		t.Fatalf("RO tracks %d services, want %d", got, domains)
	}
	for i, lo := range los {
		if len(lo.Services()) != 1 {
			t.Fatalf("domain %d has %d services", i, len(lo.Services()))
		}
	}
}

// TestGenerationConflictRetry forces commit races: many goroutines install
// services that all map successfully against the same initial snapshot.
// Every loser must re-plan on the fresh generation and eventually land —
// no lost updates, no double-booked resources.
func TestGenerationConflictRetry(t *testing.T) {
	// No artificial latency: maximize commit contention.
	const workers = 6
	ro, _ := lineRO(t, 2, 0, nil)
	baseGen := ro.Generation()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("g%d", w)
			req := chainReq(t, id, "sap1", "b0", "fw")
			req.NFs[nffg.ID(id+"-nf")].Host = "bisbis@d0"
			// Distinct flow destinations per service: route odd workers the
			// other way so classifiers do not conflict.
			if w%2 == 1 {
				req = chainReq(t, id, "b0", "sap1", "nat")
				req.NFs[nffg.ID(id+"-nf")].Host = "bisbis@d0"
			}
			_, errs[w] = ro.Install(context.Background(), req)
		}(w)
	}
	wg.Wait()
	accepted := 0
	for _, err := range errs {
		if err == nil {
			accepted++
		} else if !errors.Is(err, unify.ErrRejected) && !errors.Is(err, unify.ErrBusy) {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	// One service per direction holds the untagged SAP ingress classifier;
	// everyone else must be rejected on the re-mapped (fresh) snapshot.
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2", accepted)
	}
	if got := ro.Generation() - baseGen; got != 2 {
		t.Fatalf("generation advanced by %d, want 2 (one per committed install)", got)
	}
}

// TestRollbackOnMidFanoutFailure deploys across three slow domains where the
// middle one fails after its programming delay: the siblings that already
// deployed must be rolled back (in parallel) and the DoV reservation
// released, while an unrelated concurrent install on a healthy domain
// proceeds untouched.
func TestRollbackOnMidFanoutFailure(t *testing.T) {
	const delay = 30 * time.Millisecond
	ro, los := lineRO(t, 3, delay, map[int]Programmer{
		1: &slowProgrammer{delay: delay, failPfx: "bad"},
	})
	dovBefore := mustDoV(t, ro)

	var wg sync.WaitGroup
	var goodErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := chainReq(t, "good", "sap1", "b0", "fw")
		req.NFs["good-nf"].Host = "bisbis@d0"
		_, goodErr = ro.Install(context.Background(), req)
	}()

	badReq := spanReq(t, "bad", 3)
	_, err := ro.Install(context.Background(), badReq)
	wg.Wait()
	if !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("mid-fan-out failure must reject: %v", err)
	}
	if goodErr != nil {
		t.Fatalf("unrelated concurrent install failed: %v", goodErr)
	}
	for i, lo := range los {
		want := 0
		if i == 0 {
			want = 1 // the "good" service lives on d0
		}
		if got := len(lo.Services()); got != want {
			t.Fatalf("domain %d tracks %d services, want %d", i, got, want)
		}
	}
	if got := ro.Services(); len(got) != 1 || got[0] != "good" {
		t.Fatalf("RO services after rollback: %v", got)
	}
	// The failed install's reservation is fully released: removing the good
	// service must restore the initial DoV resource-for-resource.
	if err := ro.Remove(context.Background(), "good"); err != nil {
		t.Fatal(err)
	}
	dovAfter := mustDoV(t, ro)
	for _, id := range dovBefore.InfraIDs() {
		before, _ := dovBefore.AvailableResources(id)
		after, _ := dovAfter.AvailableResources(id)
		if before != after {
			t.Fatalf("capacity leak on %s: %+v != %+v", id, before, after)
		}
	}
	if len(dovAfter.NFs) != 0 {
		t.Fatalf("NFs leaked into DoV: %v", dovAfter.NFIDs())
	}
}

// TestInstallCancellation cancels the northbound context while children are
// programming: the install must fail with the context error and leave no
// partial state anywhere in the hierarchy.
func TestInstallCancellation(t *testing.T) {
	const delay = 200 * time.Millisecond
	ro, los := lineRO(t, 4, delay, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(delay / 8)
		cancel()
	}()
	_, err := ro.Install(ctx, spanReq(t, "c", 4))
	if err == nil {
		t.Fatal("canceled install must fail")
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("unexpected error: %v", err)
	}
	for _, lo := range los {
		if len(lo.Services()) != 0 {
			t.Fatalf("child %s kept state after cancellation", lo.ID())
		}
	}
	if len(ro.Services()) != 0 {
		t.Fatal("RO kept state after cancellation")
	}
	// The stack stays usable: the same request succeeds afterwards.
	if _, err := ro.Install(context.Background(), spanReq(t, "c", 4)); err != nil {
		t.Fatalf("post-cancellation install: %v", err)
	}
}

// TestRemoveWhileRemoving verifies the in-flight exclusion: a second Remove
// racing a slow teardown gets unify.ErrBusy (or ErrUnknownService if the
// first already finished), never a double teardown.
func TestRemoveWhileRemoving(t *testing.T) {
	const delay = 100 * time.Millisecond
	ro, _ := lineRO(t, 2, delay, nil)
	req := spanReq(t, "twice", 2)
	if _, err := ro.Install(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ro.Remove(context.Background(), "twice") }()
	time.Sleep(delay / 4) // let the first Remove enter its fan-out
	err2 := ro.Remove(context.Background(), "twice")
	if !errors.Is(err2, unify.ErrBusy) && !errors.Is(err2, unify.ErrUnknownService) {
		t.Fatalf("concurrent remove: %v", err2)
	}
	if err := <-done; err != nil {
		t.Fatalf("first remove: %v", err)
	}
	if len(ro.Services()) != 0 {
		t.Fatal("service not removed")
	}
}

// TestViewsRunOutsideLock verifies View never blocks behind a slow install:
// with children programming for `delay`, a concurrent View must return
// quickly from the immutable snapshot.
func TestViewsRunOutsideLock(t *testing.T) {
	const delay = 200 * time.Millisecond
	ro, _ := lineRO(t, 2, delay, nil)
	installing := make(chan struct{})
	go func() {
		close(installing)
		_, _ = ro.Install(context.Background(), spanReq(t, "slow", 2))
	}()
	<-installing
	time.Sleep(delay / 8) // install is now inside the child fan-out
	start := time.Now()
	if _, err := ro.View(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > delay/2 {
		t.Fatalf("View blocked %v behind an in-flight install", elapsed)
	}
}

// TestRemoveRetryAfterChildTeardownFailure pins the Remove contract: when a
// child teardown fails, the service stays tracked (and the DoV reservation
// held) so Remove can be retried; the retry tolerates children that were
// already torn down in the first attempt.
func TestRemoveRetryAfterChildTeardownFailure(t *testing.T) {
	flaky := &teardownFailingProgrammer{}
	flaky.failDeletes.Store(1)
	ro, los := lineRO(t, 2, 0, map[int]Programmer{1: flaky})
	if _, err := ro.Install(context.Background(), spanReq(t, "svc", 2)); err != nil {
		t.Fatal(err)
	}
	dovDeployed := mustDoV(t, ro)

	if err := ro.Remove(context.Background(), "svc"); err == nil {
		t.Fatal("first remove must report the child teardown failure")
	}
	if got := ro.Services(); len(got) != 1 || got[0] != "svc" {
		t.Fatalf("service must stay removable after failed teardown: %v", got)
	}
	// The reservation is still held: the DoV must not have been released.
	after := mustDoV(t, ro)
	for _, id := range dovDeployed.InfraIDs() {
		b, _ := dovDeployed.AvailableResources(id)
		a, _ := after.AvailableResources(id)
		if b != a {
			t.Fatalf("DoV released despite failed teardown on %s", id)
		}
	}
	// d0 tore down, d1 kept its sub-service.
	if len(los[0].Services()) != 0 || len(los[1].Services()) != 1 {
		t.Fatalf("partial teardown state: d0=%v d1=%v", los[0].Services(), los[1].Services())
	}

	// Retry succeeds: d0's already-gone sub-service is tolerated.
	if err := ro.Remove(context.Background(), "svc"); err != nil {
		t.Fatalf("retry remove: %v", err)
	}
	if len(ro.Services())+len(los[0].Services())+len(los[1].Services()) != 0 {
		t.Fatal("state left after retried removal")
	}
}

// TestInstallCancellationKeepsContextIdentity verifies that a northbound
// cancellation surfaces as the context error, not as a merit-based
// rejection.
func TestInstallCancellationKeepsContextIdentity(t *testing.T) {
	const delay = 200 * time.Millisecond
	ro, _ := lineRO(t, 2, delay, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(delay / 8)
		cancel()
	}()
	_, err := ro.Install(ctx, spanReq(t, "c", 2))
	if err == nil {
		t.Fatal("canceled install must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation must keep context identity, got: %v", err)
	}
	if errors.Is(err, unify.ErrRejected) {
		t.Fatalf("cancellation must not read as rejection: %v", err)
	}
}

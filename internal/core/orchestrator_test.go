package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// recordingProgrammer counts committed operations.
type recordingProgrammer struct {
	mu      sync.Mutex
	commits int
	addNFs  int
	delNFs  int
	addRule int
	delRule int
	failPfx string // fail when a committed NF ID has this prefix
}

func (p *recordingProgrammer) Commit(_ context.Context, d *nffg.Delta, _ *nffg.NFFG) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nf := range d.AddNFs {
		if p.failPfx != "" && strings.HasPrefix(string(nf.ID), p.failPfx) {
			return errors.New("programmer: induced failure")
		}
	}
	an, dn, ar, dr := d.Counts()
	p.commits++
	p.addNFs += an
	p.delNFs += dn
	p.addRule += ar
	p.delRule += dr
	return nil
}

// leafDomain builds a local orchestrator over a 2-node substrate with the
// given domain name, a user SAP and a border SAP.
func leafDomain(t testing.TB, name string, userSAP, borderSAP nffg.ID, prog Programmer) *LocalOrchestrator {
	t.Helper()
	sub, err := nffg.NewBuilder(name).
		BiSBiS(nffg.ID(name+"-n1"), name, 4, res(8, 4096), "fw", "dpi", "nat").
		BiSBiS(nffg.ID(name+"-n2"), name, 4, res(8, 4096), "fw", "dpi", "nat").
		SAP(userSAP).SAP(borderSAP).
		Link("u", userSAP, "1", nffg.ID(name+"-n1"), "1", 100, 1).
		Link("i", nffg.ID(name+"-n1"), "2", nffg.ID(name+"-n2"), "1", 1000, 1).
		Link("b", nffg.ID(name+"-n2"), "2", borderSAP, "1", 500, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	lo, err := NewLocalOrchestrator(LocalConfig{ID: name, Substrate: sub, Programmer: prog})
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// mustDoV reads the orchestrator's consistent DoV cut, failing the test on a
// merge error. The returned graph is a shared sealed snapshot: read-only.
func mustDoV(t testing.TB, ro *ResourceOrchestrator) *nffg.NFFG {
	t.Helper()
	dov, err := ro.DoV()
	if err != nil {
		t.Fatal(err)
	}
	return dov
}

// chainReq builds sap1 -> fw -> sap2 with the given id.
func chainReq(t testing.TB, id string, sapA, sapB nffg.ID, nfType string) *nffg.NFFG {
	t.Helper()
	g, err := nffg.NewBuilder(id).
		SAP(sapA).SAP(sapB).
		NF(nffg.ID(id+"-nf"), nfType, 2, res(2, 512)).
		Chain(id, 10, 0, sapA, nffg.ID(id+"-nf"), sapB).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLocalOrchestratorLifecycle(t *testing.T) {
	prog := &recordingProgrammer{}
	lo := leafDomain(t, "mn", "sap1", "border", prog)

	v, err := lo.View(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Infras) != 1 {
		t.Fatalf("leaf should export single BiSBiS: %s", v.Summary())
	}

	req := chainReq(t, "svc1", "sap1", "border", "fw")
	// Pin to the view node: the local orchestrator must expand the pin.
	req.NFs["svc1-nf"].Host = "bisbis@mn"
	receipt, err := lo.Install(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.ServiceID != "svc1" {
		t.Fatalf("receipt: %+v", receipt)
	}
	host := receipt.Placements["svc1-nf"]
	if host != "mn-n1" && host != "mn-n2" {
		t.Fatalf("placement on internal node expected, got %s", host)
	}
	if prog.commits != 1 || prog.addNFs != 1 || prog.addRule == 0 {
		t.Fatalf("programmer not driven: %+v", prog)
	}
	if got := lo.Services(); len(got) != 1 || got[0] != "svc1" {
		t.Fatalf("services: %v", got)
	}
	// View shrinks by the NF demand.
	v2, _ := lo.View(context.Background())
	if v2.Infras["bisbis@mn"].Capacity.CPU != 16-2 {
		t.Fatalf("view capacity after install: %g", v2.Infras["bisbis@mn"].Capacity.CPU)
	}

	if err := lo.Remove(context.Background(), "svc1"); err != nil {
		t.Fatal(err)
	}
	if prog.delNFs != 1 || prog.delRule != prog.addRule {
		t.Fatalf("teardown not programmed: %+v", prog)
	}
	v3, _ := lo.View(context.Background())
	if v3.Infras["bisbis@mn"].Capacity.CPU != 16 {
		t.Fatalf("capacity not restored: %g", v3.Infras["bisbis@mn"].Capacity.CPU)
	}
	if err := lo.Remove(context.Background(), "svc1"); !errors.Is(err, unify.ErrUnknownService) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestLocalOrchestratorRejects(t *testing.T) {
	lo := leafDomain(t, "mn", "sap1", "border", &recordingProgrammer{})
	// Unknown view node pin.
	req := chainReq(t, "bad1", "sap1", "border", "fw")
	req.NFs["bad1-nf"].Host = "bisbis@elsewhere"
	if _, err := lo.Install(context.Background(), req); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("unknown pin: %v", err)
	}
	// Unsupported NF type.
	req2 := chainReq(t, "bad2", "sap1", "border", "quantum-fft")
	if _, err := lo.Install(context.Background(), req2); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("unsupported type: %v", err)
	}
	// Duplicate service ID.
	ok1 := chainReq(t, "dup", "sap1", "border", "fw")
	if _, err := lo.Install(context.Background(), ok1); err != nil {
		t.Fatal(err)
	}
	ok2 := chainReq(t, "dup", "sap1", "border", "fw")
	if _, err := lo.Install(context.Background(), ok2); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("duplicate id: %v", err)
	}
	// Missing request ID.
	empty := nffg.New("")
	if _, err := lo.Install(context.Background(), empty); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("missing id: %v", err)
	}
}

func TestLocalOrchestratorProgrammerFailureLeavesState(t *testing.T) {
	prog := &recordingProgrammer{failPfx: "svcX"}
	lo := leafDomain(t, "mn", "sap1", "border", prog)
	req := chainReq(t, "svcX", "sap1", "border", "fw")
	if _, err := lo.Install(context.Background(), req); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("programming failure must reject: %v", err)
	}
	if len(lo.Services()) != 0 {
		t.Fatal("failed install must not be recorded")
	}
	v, _ := lo.View(context.Background())
	if v.Infras["bisbis@mn"].Capacity.CPU != 16 {
		t.Fatalf("capacity must be unchanged: %g", v.Infras["bisbis@mn"].Capacity.CPU)
	}
}

// buildMdO wires two leaf domains (shared border SAP "b-ab") under one
// resource orchestrator.
func buildMdO(t testing.TB, progA, progB Programmer) (*ResourceOrchestrator, *LocalOrchestrator, *LocalOrchestrator) {
	t.Helper()
	loA := leafDomain(t, "domA", "sap1", "b-ab", progA)
	loB := leafDomain(t, "domB", "sap2", "b-ab", progB)
	ro := NewResourceOrchestrator(Config{ID: "mdo"})
	if err := ro.Attach(context.Background(), loA); err != nil {
		t.Fatal(err)
	}
	if err := ro.Attach(context.Background(), loB); err != nil {
		t.Fatal(err)
	}
	return ro, loA, loB
}

func TestROAggregatesDomainViews(t *testing.T) {
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	dov := mustDoV(t, ro)
	if len(dov.Infras) != 2 {
		t.Fatalf("DoV should hold one exported node per domain: %s", dov.Summary())
	}
	if len(dov.SAPs) != 3 { // sap1, sap2, shared b-ab
		t.Fatalf("SAPs: %v", dov.SAPIDs())
	}
	tg := dov.InfraTopo()
	if !tg.Connected("bisbis@domA", "bisbis@domB") {
		t.Fatal("domains must stitch at the border SAP")
	}
	v, err := ro.View(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Infras) != 2 {
		t.Fatalf("northbound view: %s", v.Summary())
	}
}

func TestROInstallsAcrossDomains(t *testing.T) {
	progA, progB := &recordingProgrammer{}, &recordingProgrammer{}
	ro, loA, loB := buildMdO(t, progA, progB)

	// Chain sap1 (domA) -> fw -> nat -> sap2 (domB): must span both domains.
	req, err := nffg.NewBuilder("svc").
		SAP("sap1").SAP("sap2").
		NF("fw", "fw", 2, res(2, 512)).
		NF("nat", "nat", 2, res(2, 512)).
		Chain("svc", 10, 0, "sap1", "fw", "nat", "sap2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	receipt, err := ro.Install(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Both children must have received sub-services.
	if len(receipt.Children) != 2 {
		t.Fatalf("children receipts: %v", receipt.Children)
	}
	if len(loA.Services()) != 1 || len(loB.Services()) != 1 {
		t.Fatalf("sub-services: A=%v B=%v", loA.Services(), loB.Services())
	}
	if progA.addNFs+progB.addNFs != 2 {
		t.Fatalf("NFs programmed: %d+%d", progA.addNFs, progB.addNFs)
	}
	if progA.addRule == 0 || progB.addRule == 0 {
		t.Fatalf("rules programmed: %d/%d", progA.addRule, progB.addRule)
	}
	// The RO's own services.
	if got := ro.Services(); len(got) != 1 || got[0] != "svc" {
		t.Fatalf("RO services: %v", got)
	}

	// Removal propagates.
	if err := ro.Remove(context.Background(), "svc"); err != nil {
		t.Fatal(err)
	}
	if len(loA.Services())+len(loB.Services()) != 0 {
		t.Fatal("children should be cleaned up")
	}
	if progA.delNFs+progB.delNFs != 2 {
		t.Fatalf("teardown: %d+%d", progA.delNFs, progB.delNFs)
	}
}

func TestRORollsBackOnChildFailure(t *testing.T) {
	// domB rejects everything: the sub-install on domA must be rolled back.
	progB := &recordingProgrammer{failPfx: "svc"}
	ro, loA, loB := buildMdO(t, &recordingProgrammer{}, progB)
	req, err := nffg.NewBuilder("svc").
		SAP("sap1").SAP("sap2").
		NF("svc-fw", "fw", 2, res(2, 512)).
		NF("svc-nat", "nat", 2, res(2, 512)).
		Chain("svc", 10, 0, "sap1", "svc-fw", "svc-nat", "sap2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Force at least one NF into domB so its failing programmer triggers.
	req.NFs["svc-nat"].Host = "bisbis@domB"
	if _, err := ro.Install(context.Background(), req); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("install should fail: %v", err)
	}
	if len(loA.Services())+len(loB.Services()) != 0 {
		t.Fatalf("rollback incomplete: A=%v B=%v", loA.Services(), loB.Services())
	}
	if len(ro.Services()) != 0 {
		t.Fatal("RO must not record failed service")
	}
	// Capacity intact everywhere.
	vA, _ := loA.View(context.Background())
	if vA.Infras["bisbis@domA"].Capacity.CPU != 16 {
		t.Fatalf("domA capacity leaked: %g", vA.Infras["bisbis@domA"].Capacity.CPU)
	}
}

func TestROPinnedToDomainNode(t *testing.T) {
	ro, _, loB := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	req := chainReq(t, "pinned", "sap1", "sap2", "fw")
	req.NFs["pinned-nf"].Host = "bisbis@domB" // force placement in domain B
	receipt, err := ro.Install(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.Placements["pinned-nf"] != "bisbis@domB" {
		t.Fatalf("pin not honored: %v", receipt.Placements)
	}
	if len(loB.Services()) != 1 {
		t.Fatal("domB should host the sub-service")
	}
}

func TestRORecursiveStack(t *testing.T) {
	// Three levels: leaf domains -> MdO -> top orchestrator.
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	top := NewResourceOrchestrator(Config{ID: "top", Virtualizer: SingleBiSBiS{NodeID: "bisbis@top"}})
	if err := top.Attach(context.Background(), ro); err != nil {
		t.Fatal(err)
	}
	v, err := top.View(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Infras) != 1 {
		t.Fatalf("top view: %s", v.Summary())
	}
	req := chainReq(t, "deep", "sap1", "sap2", "nat")
	receipt, err := top.Install(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The receipt chain must descend: top -> mdo -> leaf.
	mdoReceipt, ok := receipt.Children["mdo"]
	if !ok {
		t.Fatalf("no mdo receipt: %+v", receipt.Children)
	}
	if len(mdoReceipt.Children) == 0 {
		t.Fatalf("mdo receipt has no leaf children: %+v", mdoReceipt)
	}
	if err := top.Remove(context.Background(), "deep"); err != nil {
		t.Fatal(err)
	}
	if len(ro.Services()) != 0 {
		t.Fatal("recursive removal incomplete")
	}
}

func TestRODuplicateAndUnknown(t *testing.T) {
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	req := chainReq(t, "s1", "sap1", "sap2", "fw")
	if _, err := ro.Install(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	dup := chainReq(t, "s1", "sap1", "sap2", "fw")
	if _, err := ro.Install(context.Background(), dup); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := ro.Remove(context.Background(), "nope"); !errors.Is(err, unify.ErrUnknownService) {
		t.Fatalf("unknown remove: %v", err)
	}
}

func TestROCapacityExhaustion(t *testing.T) {
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	// Each domain has 16 CPU (2 nodes x 8); install chains until rejection.
	installed := 0
	for i := 0; i < 40; i++ {
		req := chainReq(t, fmt.Sprintf("s%02d", i), "sap1", "sap2", "fw")
		// Distinct SAP pairs would be needed to avoid ingress rule conflicts;
		// here every chain shares SAPs, so expect an eventual conflict or
		// capacity rejection — both are admission control.
		if _, err := ro.Install(context.Background(), req); err != nil {
			if !errors.Is(err, unify.ErrRejected) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			break
		}
		installed++
	}
	if installed == 0 {
		t.Fatal("at least one service must fit")
	}
	if installed >= 40 {
		t.Fatal("admission control never triggered")
	}
}

package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// TestCrashRecoveryAfterDetach pins the journal contract of runtime detach:
// the detach record replays AFTER the displaced services' release records
// (so survivors' recovered graphs carry the freed capacity), the dropped
// shard and its services vanish from the recovered state, and a post-restart
// re-attach of the same domain name resumes the shard's generation counter
// past the detached one instead of restarting at zero.
func TestCrashRecoveryAfterDetach(t *testing.T) {
	dir := t.TempDir()
	ro, st, _ := journaledMesh(t, dir, 3, 4)
	ctx := context.Background()

	// Survivor-only, victim-only, and cross-shard (d0+d1) services: the
	// latter two are displaced by detaching d1 and must release their DoV
	// share on d0 through the journal.
	for j := 0; j < 2; j++ {
		if _, err := ro.Install(ctx, slotChain(t, fmt.Sprintf("keep%d", j), 0, j)); err != nil {
			t.Fatal(err)
		}
		if _, err := ro.Install(ctx, slotChain(t, fmt.Sprintf("gone%d", j), 1, j)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ro.Install(ctx, crossChain(t, "span", 0, 2)); err != nil {
		t.Fatal(err)
	}

	report, err := ro.Detach(ctx, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Displaced) != 3 {
		t.Fatalf("displaced: %+v", report.Displaced)
	}

	liveServices := ro.Services()
	liveSnaps := ro.ShardSnapshots()

	// kill -9 after the detach: recover from the WAL alone.
	ro2, state, info := crashRecover(t, dir)
	if len(info.Errors) != 0 {
		t.Fatalf("replay errors: %v", info.Errors)
	}
	if state.Detached["d1"] == 0 {
		t.Fatalf("recovered state lost the detach floor: %+v", state.Detached)
	}
	recServices := ro2.Services()
	if fmt.Sprint(recServices) != fmt.Sprint(liveServices) {
		t.Fatalf("recovered services %v, want %v", recServices, liveServices)
	}
	recSnaps := ro2.ShardSnapshots()
	if len(recSnaps) != len(liveSnaps) {
		t.Fatalf("recovered %d shards, want %d", len(recSnaps), len(liveSnaps))
	}
	for i := range liveSnaps {
		if recSnaps[i].Key != liveSnaps[i].Key || recSnaps[i].Gen != liveSnaps[i].Gen {
			t.Fatalf("shard %s gen %d, want %s gen %d",
				recSnaps[i].Key, recSnaps[i].Gen, liveSnaps[i].Key, liveSnaps[i].Gen)
		}
		// Byte-equality proves the release records replayed before the detach
		// dropped the service table entries: leaked releases would leave the
		// displaced services' allocations in d0's recovered graph.
		if !bytes.Equal(graphBytes(t, recSnaps[i].Graph), graphBytes(t, liveSnaps[i].Graph)) {
			t.Fatalf("shard %s graph diverged after detach replay", recSnaps[i].Key)
		}
	}

	// Re-attach a fresh d1 on the recovered orchestrator: its journal log must
	// stay gen-monotone, i.e. the new shard starts past the detached floor.
	lo := leafDomain(t, "d1", "reb-in", "reb-out", &recordingProgrammer{})
	if err := ro2.Attach(ctx, lo); err != nil {
		t.Fatal(err)
	}
	ro2.mu.Lock()
	newGen := ro2.dir.shards["d1"].gen
	ro2.mu.Unlock()
	if newGen <= state.Detached["d1"] {
		t.Fatalf("re-attached shard gen %d not past detach floor %d", newGen, state.Detached["d1"])
	}

	// A checkpoint taken after the detach must not resurrect d1: the dropped
	// shard is absent from the snapshots, its WAL (holding the detach record)
	// survives pruning, and a second recovery folds both correctly.
	if err := st.Checkpoint(ro.ShardSnapshots); err != nil {
		t.Fatal(err)
	}
	ro3, state3, info3 := crashRecover(t, dir)
	if len(info3.Errors) != 0 {
		t.Fatalf("post-checkpoint replay errors: %v", info3.Errors)
	}
	if state3.Detached["d1"] == 0 {
		t.Fatal("checkpointed recovery lost the detach floor")
	}
	if got := ro3.Services(); fmt.Sprint(got) != fmt.Sprint(liveServices) {
		t.Fatalf("post-checkpoint services %v, want %v", got, liveServices)
	}
	for _, snap := range ro3.ShardSnapshots() {
		if snap.Key == "d1" {
			t.Fatal("checkpointed recovery resurrected the detached shard")
		}
	}
}

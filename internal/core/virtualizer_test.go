package core

import (
	"errors"
	"testing"

	"github.com/unify-repro/escape/internal/nffg"
)

func res(cpu, mem float64) nffg.Resources { return nffg.Resources{CPU: cpu, Mem: mem, Storage: cpu} }

// twoDomainDov: two domains of two nodes each, stitched by border SAP "b-ab",
// with user SAPs sap1 (domain A side) and sap2 (domain B side).
func twoDomainDov(t testing.TB) *nffg.NFFG {
	t.Helper()
	g, err := nffg.NewBuilder("dov").
		BiSBiS("a1", "domA", 4, res(8, 4096), "fw").
		BiSBiS("a2", "domA", 4, res(4, 2048), "fw", "dpi").
		BiSBiS("b1", "domB", 4, res(16, 8192), "nat").
		BiSBiS("b2", "domB", 4, res(8, 4096), "nat", "cache").
		SAP("sap1").SAP("sap2").SAP("b-ab").
		Link("l1", "sap1", "1", "a1", "1", 100, 1).
		Link("l2", "a1", "2", "a2", "1", 1000, 1).
		Link("l3", "a2", "2", "b-ab", "1", 500, 2).
		Link("l4", "b-ab", "1", "b1", "1", 500, 2).
		Link("l5", "b1", "2", "b2", "1", 1000, 1).
		Link("l6", "b2", "2", "sap2", "1", 100, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTransparentView(t *testing.T) {
	dov := twoDomainDov(t)
	v, err := Transparent{}.View(dov)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Infras) != 4 || len(v.SAPs) != 3 {
		t.Fatalf("transparent view must be 1:1: %s", v.Summary())
	}
	// Mutating the view must not touch the DoV.
	v.Infras["a1"].Capacity.CPU = 0
	if dov.Infras["a1"].Capacity.CPU != 8 {
		t.Fatal("view aliases DoV")
	}
	sc := Transparent{}.Scope(dov, "a1")
	if len(sc) != 1 || sc[0] != "a1" {
		t.Fatalf("scope: %v", sc)
	}
	if (Transparent{}).Scope(dov, "ghost") != nil {
		t.Fatal("unknown node must scope to nil")
	}
}

func TestSingleBiSBiSView(t *testing.T) {
	dov := twoDomainDov(t)
	virt := SingleBiSBiS{}
	v, err := virt.View(dov)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Infras) != 1 {
		t.Fatalf("single view must have 1 node: %s", v.Summary())
	}
	agg := v.Infras["bisbis0"]
	if agg == nil {
		t.Fatal("aggregate node missing")
	}
	if agg.Capacity.CPU != 8+4+16+8 {
		t.Fatalf("aggregate CPU: %g", agg.Capacity.CPU)
	}
	// Union of supported types.
	for _, want := range []string{"fw", "dpi", "nat", "cache"} {
		if !agg.SupportsNF(want) {
			t.Fatalf("aggregate should support %s: %v", want, agg.Supported)
		}
	}
	// All three SAPs present and linked.
	if len(v.SAPs) != 3 {
		t.Fatalf("SAPs: %d", len(v.SAPs))
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scope expands to all DoV nodes.
	sc := virt.Scope(dov, "bisbis0")
	if len(sc) != 4 {
		t.Fatalf("scope: %v", sc)
	}
}

func TestSingleBiSBiSAccountsDeployedNFs(t *testing.T) {
	dov := twoDomainDov(t)
	dov.NFs["x"] = &nffg.NF{ID: "x", FunctionalType: "fw", Ports: []*nffg.Port{{ID: "1"}}, Demand: res(3, 1024), Host: "a1", Status: nffg.StatusDeployed}
	v, err := SingleBiSBiS{}.View(dov)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Infras["bisbis0"].Capacity.CPU; got != 36-3 {
		t.Fatalf("deployed NFs must reduce the aggregate: %g", got)
	}
}

func TestDomainBiSBiSView(t *testing.T) {
	dov := twoDomainDov(t)
	virt := DomainBiSBiS{}
	v, err := virt.View(dov)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Infras) != 2 {
		t.Fatalf("want one aggregate per domain: %s", v.Summary())
	}
	aggA := v.Infras[nffg.ID("bisbis@domA")]
	aggB := v.Infras[nffg.ID("bisbis@domB")]
	if aggA == nil || aggB == nil {
		t.Fatalf("aggregates missing: %v", v.InfraIDs())
	}
	if aggA.Capacity.CPU != 12 || aggB.Capacity.CPU != 24 {
		t.Fatalf("per-domain capacities: %g/%g", aggA.Capacity.CPU, aggB.Capacity.CPU)
	}
	if !aggA.SupportsNF("dpi") || aggA.SupportsNF("nat") {
		t.Fatalf("domA types: %v", aggA.Supported)
	}
	// Border SAP connects the two aggregates (via its two uplinks).
	tg := v.InfraTopo()
	if !tg.Connected("bisbis@domA", "bisbis@domB") {
		t.Fatalf("aggregates must be connected through the border SAP:\n%s", v.Render())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scopes.
	scA := virt.Scope(dov, "bisbis@domA")
	if len(scA) != 2 || scA[0] != "a1" || scA[1] != "a2" {
		t.Fatalf("domA scope: %v", scA)
	}
	if virt.Scope(dov, "nope") != nil {
		t.Fatal("unknown scope must be nil")
	}
}

func TestViewsRejectEmptyDov(t *testing.T) {
	empty := nffg.New("empty")
	for _, virt := range []Virtualizer{Transparent{}, SingleBiSBiS{}, DomainBiSBiS{}} {
		if _, err := virt.View(empty); !errors.Is(err, ErrEmptyView) {
			t.Fatalf("%s should reject empty DoV: %v", virt.Name(), err)
		}
	}
}

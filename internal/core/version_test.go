package core

import (
	"context"
	"testing"
	"time"
)

// TestViewVersionStableBetweenCommits: the ETag is a pure function of the
// shard generation vector — repeated reads without commits agree, and a
// commit moves both the ETag and the scalar generation.
func TestViewVersionStableBetweenCommits(t *testing.T) {
	ctx := context.Background()
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})

	v1 := ro.ViewVersion()
	if v1.ETag == "" {
		t.Fatal("versioned orchestrator must always name an ETag")
	}
	if v2 := ro.ViewVersion(); v2.ETag != v1.ETag {
		t.Fatalf("ETag moved without a commit: %q -> %q", v1.ETag, v2.ETag)
	}
	view, ver, err := ro.VersionedView(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if view == nil || !view.Sealed() {
		t.Fatal("versioned view must be a sealed snapshot")
	}
	if ver.ETag != v1.ETag {
		t.Fatalf("VersionedView etag %q != ViewVersion etag %q", ver.ETag, v1.ETag)
	}

	if _, err := ro.Install(ctx, chainReq(t, "svc", "sap1", "sap2", "fw")); err != nil {
		t.Fatal(err)
	}
	v3 := ro.ViewVersion()
	if v3.ETag == v1.ETag {
		t.Fatal("commit must move the ETag")
	}
	if v3.Generation <= v1.Generation {
		t.Fatalf("commit must advance the generation: %d -> %d", v1.Generation, v3.Generation)
	}
}

// TestWaitVersionWakesOnCommit: a blocked WaitVersion call returns when a
// commit bumps the epoch past its cursor, and the version it reports is
// never older than what it waited for.
func TestWaitVersionWakesOnCommit(t *testing.T) {
	ctx := context.Background()
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	from := ro.ViewVersion().Generation

	type result struct {
		ver ViewVersion
		err error
	}
	done := make(chan result, 1)
	go func() {
		ver, err := ro.WaitVersion(context.Background(), from)
		done <- result{ver, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("WaitVersion returned before any commit: %+v %v", r.ver, r.err)
	case <-time.After(50 * time.Millisecond):
	}

	if _, err := ro.Install(ctx, chainReq(t, "svc", "sap1", "sap2", "fw")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.ver.Generation <= from {
			t.Fatalf("woke at generation %d, waited past %d", r.ver.Generation, from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitVersion missed the commit wakeup")
	}

	// A cursor already behind the current version returns immediately.
	if _, err := ro.WaitVersion(ctx, from); err != nil {
		t.Fatal(err)
	}
}

// TestWaitVersionLocalOrchestrator: the leaf layer shares the wait contract —
// install and remove both wake blocked watchers.
func TestWaitVersionLocalOrchestrator(t *testing.T) {
	ctx := context.Background()
	lo := leafDomain(t, "mn", "sap1", "border", &recordingProgrammer{})
	from := lo.ViewVersion().Generation

	done := make(chan ViewVersion, 1)
	go func() {
		ver, err := lo.WaitVersion(context.Background(), from)
		if err != nil {
			t.Error(err)
		}
		done <- ver
	}()
	time.Sleep(20 * time.Millisecond)
	req := chainReq(t, "svc1", "sap1", "border", "fw")
	req.NFs["svc1-nf"].Host = "bisbis@mn"
	if _, err := lo.Install(ctx, req); err != nil {
		t.Fatal(err)
	}
	select {
	case ver := <-done:
		if ver.Generation <= from {
			t.Fatalf("generation did not advance: %d -> %d", from, ver.Generation)
		}
		from = ver.Generation
	case <-time.After(5 * time.Second):
		t.Fatal("install wakeup missed")
	}

	go func() {
		ver, err := lo.WaitVersion(context.Background(), from)
		if err != nil {
			t.Error(err)
		}
		done <- ver
	}()
	time.Sleep(20 * time.Millisecond)
	if err := lo.Remove(ctx, "svc1"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("remove wakeup missed")
	}
}

// TestWaitVersionHonorsContext: a canceled context unblocks the wait with the
// context's error instead of hanging on the notifier.
func TestWaitVersionHonorsContext(t *testing.T) {
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ro.WaitVersion(ctx, ro.ViewVersion().Generation); err == nil {
		t.Fatal("expired context must surface as an error")
	}
}

// Runtime detach of a child domain: the inverse of Attach. Detach unwinds
// everything attach-time registration built — the shard directory entry, the
// infra ownership map, the reverse shard index contribution — and displaces
// the services whose embeddings depended on the departing child so the fleet
// controller can re-embed them onto survivors. The generation-keyed read
// caches need no explicit invalidation: removing a shard key changes every
// subsequent generation vector, so cached cuts and views miss naturally and
// readers holding the old directory snapshot still see a consistent
// (pre-detach) cut, never a torn one.
package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"slices"
	"strings"
	"sync"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// DisplacedService describes one service Detach evicted: its original
// request graph (the re-embedding input) and the sub-services it had
// installed per child (already torn down on survivors, unreachable on the
// departed child).
type DisplacedService struct {
	ServiceID string
	Request   *nffg.NFFG
	Children  map[string][]string
}

// DetachReport summarizes a completed Detach.
type DetachReport struct {
	Child     string
	Shard     string
	Displaced []DisplacedService
}

// Detach removes a child domain from the live orchestrator: it drops the
// child's shard from the directory, retires its infra ownership and reverse
// index contribution (tombstoning nodes that no other child serves, see
// checkDomainsLocked), releases the DoV resources of every service whose
// embedding touched the child, and tears the affected services down on the
// surviving children. The displaced services are returned for re-embedding —
// Detach itself does not re-install them.
//
// Detach requires the child to be its shard's only tenant (true under the
// default ShardPerDomain sharding): the graph layer has no per-infra removal,
// so a shared shard cannot shed one child's nodes. SingleShard configurations
// therefore cannot hot-detach.
//
// Concurrency: in-flight installs that touched the shard lose their commit
// race (the final generation bump below) and re-plan against the post-detach
// directory; installs already committed but not yet deployed fail their
// southbound fan-out on the departed child and self-release. Readers keep
// serving consistent pre-detach cuts until their next directory fetch.
//
// Crash note: the detach journal record is appended after the displaced
// services' release records so replay frees survivors' resources before
// dropping the service table entries. A crash before the record simply
// resurrects the pre-detach fleet — the controller re-probes and re-evicts.
func (ro *ResourceOrchestrator) Detach(ctx context.Context, child string) (*DetachReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ro.mu.Lock()
	key, ok := ro.dir.childShard[child]
	if !ok {
		ro.mu.Unlock()
		return nil, fmt.Errorf("core: detach %s: %w", child, domain.ErrUnknown)
	}
	sh := ro.dir.shards[key]
	if others := exclude(ro.dir.domains[key], child); len(others) > 0 {
		ro.mu.Unlock()
		return nil, fmt.Errorf("core: detach %s: shard %s also hosts %v — runtime detach requires per-domain sharding", child, key, others)
	}
	ro.mu.Unlock()

	// Lock order: shard mutex before ro.mu. Holding sh.mu across the
	// directory swap AND the generation bump is what makes the detach atomic
	// against the commit path: any commit touching this shard either finished
	// before we got the lock (its service is in the table and displaced
	// below) or validates its generation after our bump, loses, and re-plans
	// against the post-detach directory.
	sh.mu.Lock()
	ro.mu.Lock()
	if ro.dir.childShard[child] != key || ro.dir.shards[key] != sh {
		ro.mu.Unlock()
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: fleet membership changed during detach of %s", unify.ErrBusy, child)
	}

	// Displace every deployed service whose embedding touched the shard (or
	// that installed sub-services on the child). Marking them stateRemoving
	// excludes concurrent Remove/Detach; pending installs are left alone —
	// they either lose the commit race or fail their fan-out and self-clean.
	type displaced struct {
		id  string
		rec *serviceRecord
	}
	var evicted []displaced
	for id, rec := range ro.services {
		if rec.state != stateReady {
			continue
		}
		if slices.Contains(rec.shards, key) || len(rec.children[child]) > 0 {
			rec.state = stateRemoving
			evicted = append(evicted, displaced{id: id, rec: rec})
		}
	}
	slices.SortFunc(evicted, func(a, b displaced) int {
		return strings.Compare(a.id, b.id)
	})

	dir := ro.dir.clone()
	delete(dir.childShard, child)
	delete(dir.shards, key)
	delete(dir.domains, key)
	dir.keys = exclude(dir.keys, key)
	owner := make(map[nffg.ID]string, len(ro.owner))
	for k, v := range ro.owner {
		if v != child {
			owner[k] = v
		}
	}
	contrib := make(map[string]shardContrib, len(ro.contrib))
	for k, v := range ro.contrib {
		if k != key {
			contrib[k] = v
		}
	}
	departedNodes := ro.contrib[key].nodes
	// Resume point for a future re-attach of this key: generations must keep
	// rising across the cycle (sh.gen is bumped right below).
	ro.lastGen[key] = sh.gen + 1
	ro.dir, ro.owner, ro.contrib = dir, owner, contrib
	ro.rebuildIndexLocked()
	// Tombstone the nodes nobody answers for anymore; shared border SAPs a
	// surviving child still exports stay in the index and need none.
	for node := range departedNodes {
		if len(ro.index[node]) == 0 {
			ro.departed[node] = child
		}
	}
	ro.mu.Unlock()

	// Final generation bump: in-flight optimistic commits against the old
	// cut now fail validation and re-snapshot. No journal record yet — the
	// detach record must order after the displaced services' releases.
	sh.gen++
	sh.commits++
	finalGen := sh.gen
	sh.mu.Unlock()

	if err := ro.reg.Deregister(child); err != nil && !errors.Is(err, domain.ErrUnknown) {
		log.Printf("core %s: detach %s: deregister: %v", ro.id, child, err)
	}

	report := &DetachReport{Child: child, Shard: key}
	displacedIDs := make([]string, 0, len(evicted))
	for _, ev := range evicted {
		displacedIDs = append(displacedIDs, ev.id)
		ds := DisplacedService{ServiceID: ev.id, Children: map[string][]string{}}
		if ev.rec.mapping != nil && ev.rec.mapping.Request != nil {
			ds.Request = ev.rec.mapping.Request.Copy()
			// Host pins to nodes nobody answers for anymore cannot be honored
			// by a re-embedding: clear them so the mapper is free to place the
			// NF on a survivor. Pins to nodes a surviving child still exports
			// (shared border infrastructure) are kept.
			ro.mu.Lock()
			for _, nf := range ds.Request.NFs {
				if nf.Host != "" && len(ro.index[nf.Host]) == 0 {
					nf.Host = ""
				}
			}
			ro.mu.Unlock()
		}
		for c, subs := range ev.rec.children {
			ds.Children[c] = append([]string(nil), subs...)
		}
		report.Displaced = append(report.Displaced, ds)
	}

	// Tear the displaced services down on the surviving children (the
	// departed child is unreachable; whatever it still holds dies with it).
	// Best-effort: a failed teardown is logged, the DoV release below still
	// frees the survivors' capacity for the re-embedding.
	var wg sync.WaitGroup
	for _, ev := range evicted {
		for childID, subIDs := range ev.rec.children {
			if childID == child {
				continue
			}
			d, err := ro.reg.Get(childID)
			if err != nil {
				log.Printf("core %s: detach %s: teardown on %s: %v", ro.id, child, childID, err)
				continue
			}
			for _, subID := range subIDs {
				wg.Add(1)
				go func(d domain.Domain, childID, subID string) {
					defer wg.Done()
					if err := d.Remove(ctx, subID); err != nil && !errors.Is(err, unify.ErrUnknownService) {
						log.Printf("core %s: detach %s: remove %s on %s: %v", ro.id, child, subID, childID, err)
					}
				}(d, childID, subID)
			}
		}
	}
	wg.Wait()

	// Release the displaced services' DoV resources on surviving shards and
	// drop their reservations; the dropped shard's share dies with the shard.
	for _, ev := range evicted {
		if surviving := exclude(ev.rec.shards, key); len(surviving) > 0 && ev.rec.mapping != nil {
			if err := ro.releaseShards(ev.id, ev.rec.mapping, surviving); err != nil {
				log.Printf("core %s: detach %s: release %s: %v", ro.id, child, ev.id, err)
			}
		}
		ro.mu.Lock()
		ro.dropReservationsLocked(ev.id, ev.rec)
		ro.mu.Unlock()
	}

	epoch := ro.bumpEpoch()
	if ro.journal != nil {
		if err := ro.journal.LogDetach(key, finalGen, epoch, child, true, displacedIDs); err != nil {
			ro.stats.journalErrs.Add(1)
			log.Printf("core %s: journal detach %s: %v", ro.id, child, err)
		}
	}
	return report, nil
}

// exclude returns s without any element equal to drop (allocating a copy).
func exclude(s []string, drop string) []string {
	out := make([]string, 0, len(s))
	for _, v := range s {
		if v != drop {
			out = append(out, v)
		}
	}
	return out
}

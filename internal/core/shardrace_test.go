package core

// Conflict-injection harness for the sharded DoV (run with -race): N worker
// goroutines churn install/remove cycles over disjoint and overlapping shard
// sets while a verifier continuously merges the DoV. The invariants:
//
//   - disjoint installs never observe a generation conflict, on any shard;
//   - overlapping (multi-shard) installs are never observed torn — every
//     consistent cut of the DoV validates, and when the churn drains the DoV
//     is restored resource-for-resource;
//   - every shard's generation equals its commit count after every round
//     (each generation bump is a counted commit, conflicts bump neither).

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// meshRO builds n leaf domains in a line (border SAPs x0..x{n-2}) where every
// domain additionally exports `slots` dedicated user-SAP pairs, so each
// worker can run chains that touch no other worker's SAPs: per-domain slot
// SAPs give disjoint shard sets, border-crossing chains give overlapping
// ones.
func meshRO(t testing.TB, n, slots int) (*ResourceOrchestrator, []string) {
	t.Helper()
	return meshROCfg(t, n, slots, Config{ID: "ro"})
}

// meshROCfg is meshRO with an explicit orchestrator Config.
func meshROCfg(t testing.TB, n, slots int, cfg Config) (*ResourceOrchestrator, []string) {
	t.Helper()
	ro := NewResourceOrchestrator(cfg)
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("d%d", i)
		keys[i] = name
		node := nffg.ID(name + "-n")
		bl := nffg.NewBuilder(name).
			BiSBiS(node, name, 2+2*slots, res(1<<16, 1<<24), "fw", "dpi", "nat")
		port := 1
		if i > 0 {
			left := nffg.ID(fmt.Sprintf("x%d", i-1))
			bl.SAP(left).Link("bl", left, "1", node, fmt.Sprint(port), 1e6, 1)
			port++
		}
		if i < n-1 {
			right := nffg.ID(fmt.Sprintf("x%d", i))
			bl.SAP(right).Link("br", node, fmt.Sprint(port), right, "1", 1e6, 1)
			port++
		}
		for j := 0; j < slots; j++ {
			in := nffg.ID(fmt.Sprintf("d%d-u%din", i, j))
			out := nffg.ID(fmt.Sprintf("d%d-u%dout", i, j))
			bl.SAP(in).Link(fmt.Sprintf("ui%d", j), in, "1", node, fmt.Sprint(port), 1e6, 1)
			port++
			bl.SAP(out).Link(fmt.Sprintf("uo%d", j), node, fmt.Sprint(port), out, "1", 1e6, 1)
			port++
		}
		lo, err := NewLocalOrchestrator(LocalConfig{ID: name, Substrate: bl.MustBuild()})
		if err != nil {
			t.Fatal(err)
		}
		if err := ro.Attach(context.Background(), lo); err != nil {
			t.Fatal(err)
		}
	}
	return ro, keys
}

// slotChain builds a 1-NF chain between domain i's slot-j user SAPs, pinned
// into domain i — a request whose shard set is exactly {d<i>}.
func slotChain(t testing.TB, id string, i, j int) *nffg.NFFG {
	t.Helper()
	in := nffg.ID(fmt.Sprintf("d%d-u%din", i, j))
	out := nffg.ID(fmt.Sprintf("d%d-u%dout", i, j))
	nf := nffg.ID(id + "-nf")
	g := nffg.NewBuilder(id).
		SAP(in).SAP(out).
		NF(nf, "fw", 2, res(2, 64)).
		Chain(id, 1, 0, in, nf, out).
		MustBuild()
	g.NFs[nf].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", i))
	return g
}

// crossChain builds a 2-NF chain from domain i's slot-j ingress SAP to domain
// i+1's slot-j egress SAP, one NF pinned in each — a request whose shard set
// spans {d<i>, d<i+1>} and whose commit is a two-phase multi-shard commit.
func crossChain(t testing.TB, id string, i, j int) *nffg.NFFG {
	t.Helper()
	in := nffg.ID(fmt.Sprintf("d%d-u%din", i, j))
	out := nffg.ID(fmt.Sprintf("d%d-u%dout", i+1, j))
	nfA := nffg.ID(id + "-nfa")
	nfB := nffg.ID(id + "-nfb")
	g := nffg.NewBuilder(id).
		SAP(in).SAP(out).
		NF(nfA, "fw", 2, res(2, 64)).
		NF(nfB, "nat", 2, res(2, 64)).
		Chain(id, 1, 0, in, nfA, nfB, out).
		MustBuild()
	g.NFs[nfA].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", i))
	g.NFs[nfB].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", i+1))
	return g
}

// assertShardInvariants checks Gen == Commits on every shard (every
// generation bump is a counted commit; lost commits bump neither).
func assertShardInvariants(t testing.TB, ro *ResourceOrchestrator) {
	t.Helper()
	for _, st := range ro.ShardStats() {
		if st.Gen != st.Commits {
			t.Fatalf("shard %s: gen %d != commits %d", st.Shard, st.Gen, st.Commits)
		}
	}
}

// TestShardRaceDisjoint: one worker per domain, each churning install/remove
// cycles strictly inside its own shard. Disjoint shard sets must commit
// without a single generation conflict anywhere.
func TestShardRaceDisjoint(t *testing.T) {
	const (
		domains = 4
		rounds  = 25
	)
	ro, keys := meshRO(t, domains, 1)
	if got := len(ro.ShardStats()); got != domains {
		t.Fatalf("shards: %d, want %d", got, domains)
	}
	// Sanity: the slot chains really are single-shard requests.
	for i := 0; i < domains; i++ {
		set := ro.ShardSet(slotChain(t, fmt.Sprintf("probe%d", i), i, 0))
		if !reflect.DeepEqual(set, []string{keys[i]}) {
			t.Fatalf("worker %d shard set: %v, want [%s]", i, set, keys[i])
		}
	}
	before := ro.PipelineStats()
	var wg sync.WaitGroup
	errs := make([]error, domains)
	for w := 0; w < domains; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("svc-d%d-r%d", w, r)
				if _, err := ro.Install(ctx, slotChain(t, id, w, 0)); err != nil {
					errs[w] = fmt.Errorf("round %d install: %w", r, err)
					return
				}
				if err := ro.Remove(ctx, id); err != nil {
					errs[w] = fmt.Errorf("round %d remove: %w", r, err)
					return
				}
				assertShardInvariants(t, ro)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st := ro.PipelineStats()
	if got := st.GenConflicts - before.GenConflicts; got != 0 {
		t.Fatalf("disjoint workers observed %d generation conflicts", got)
	}
	if got := st.Busy - before.Busy; got != 0 {
		t.Fatalf("disjoint workers were crowded out %d times", got)
	}
	if got := st.Installs - before.Installs; got != domains*rounds {
		t.Fatalf("installs: %d, want %d", got, domains*rounds)
	}
	for _, sh := range ro.ShardStats() {
		if sh.Conflicts != 0 {
			t.Fatalf("shard %s saw %d conflicts on a disjoint workload", sh.Shard, sh.Conflicts)
		}
		// 1 attach + rounds × (install commit + release).
		if want := uint64(1 + 2*rounds); sh.Commits != want {
			t.Fatalf("shard %s commits: %d, want %d", sh.Shard, sh.Commits, want)
		}
	}
	assertShardInvariants(t, ro)
}

// TestShardRaceOverlapping: cross-shard chains on overlapping shard pairs
// churn concurrently with single-shard ones while a verifier continuously
// takes consistent DoV cuts. No cut may ever be torn (half a multi-shard
// commit), and draining the churn must restore the DoV exactly.
func TestShardRaceOverlapping(t *testing.T) {
	const (
		domains = 4
		rounds  = 15
	)
	ro, _ := meshRO(t, domains, 2)
	initial := mustDoV(t, ro)

	stop := make(chan struct{})
	verifierErr := make(chan error, 1)
	go func() {
		defer close(verifierErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			dov, err := ro.DoV()
			if err != nil {
				verifierErr <- fmt.Errorf("unmergeable DoV cut: %w", err)
				return
			}
			if err := dov.Validate(); err != nil {
				verifierErr <- fmt.Errorf("torn DoV cut: %w", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, domains)
	for w := 0; w < domains; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("x-w%d-r%d", w, r)
				var req *nffg.NFFG
				if w < domains-1 {
					req = crossChain(t, id, w, 0) // spans d<w>, d<w+1>: overlaps neighbors
				} else {
					req = slotChain(t, id, w, 1) // single-shard churn in the last domain
				}
				_, err := ro.Install(ctx, req)
				if errors.Is(err, unify.ErrBusy) {
					r-- // crowded out by an overlapping neighbor: retry the round
					continue
				}
				if err != nil {
					errs[w] = fmt.Errorf("round %d install: %w", r, err)
					return
				}
				if err := ro.Remove(ctx, id); err != nil {
					errs[w] = fmt.Errorf("round %d remove: %w", r, err)
					return
				}
				assertShardInvariants(t, ro)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err, ok := <-verifierErr; ok && err != nil {
		t.Fatal(err)
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	st := ro.PipelineStats()
	if st.MultiShardCommits == 0 {
		t.Fatal("cross-shard chains never took the multi-shard commit path")
	}
	assertShardInvariants(t, ro)

	// Drained: the DoV must be restored resource-for-resource.
	final := mustDoV(t, ro)
	if len(final.NFs) != 0 {
		t.Fatalf("NFs leaked into DoV: %v", final.NFIDs())
	}
	if len(final.Hops) != 0 {
		t.Fatalf("hop records leaked: %d", len(final.Hops))
	}
	for _, id := range initial.InfraIDs() {
		b, _ := initial.AvailableResources(id)
		a, err := final.AvailableResources(id)
		if err != nil || b != a {
			t.Fatalf("capacity drift on %s: %+v != %+v (%v)", id, b, a, err)
		}
		if n := len(final.Infras[id].Flowrules); n != 0 {
			t.Fatalf("%d flowrules leaked on %s", n, id)
		}
	}
	for _, l := range initial.Links {
		fl := final.LinkByID(l.ID)
		if fl == nil || fl.Bandwidth != l.Bandwidth {
			t.Fatalf("bandwidth drift on link %s", l.ID)
		}
	}
}

// TestShardRaceMixedContention mixes disjoint, overlapping and global
// (unpinned) requests — the worst interleaving for the ordered two-phase
// commit — and checks nothing deadlocks, nothing is lost, and the generation
// invariant holds throughout.
func TestShardRaceMixedContention(t *testing.T) {
	const (
		domains = 3
		rounds  = 10
	)
	ro, _ := meshRO(t, domains, 2)
	var wg sync.WaitGroup
	workers := domains + 1
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("m-w%d-r%d", w, r)
				var req *nffg.NFFG
				switch {
				case w < domains:
					req = slotChain(t, id, w, 0)
				case r%2 == 0:
					// Unpinned, anchored in one domain: the reverse index
					// narrows it to that shard, where it contends with the
					// domain's pinned worker on the same lane.
					req = slotChain(t, id, r%domains, 1)
					req.NFs[nffg.ID(id+"-nf")].Host = ""
				default:
					// Unpinned across the line: anchors {d0, d<last>} miss the
					// transit shards, so the scoped plan fails and escalates to
					// a full-DoV (all-shard) pass — the worst interleaving for
					// the ordered two-phase commit.
					in := nffg.ID("d0-u1in")
					out := nffg.ID(fmt.Sprintf("d%d-u1out", domains-1))
					nf := nffg.ID(id + "-nf")
					req = nffg.NewBuilder(id).
						SAP(in).SAP(out).
						NF(nf, "fw", 2, res(2, 64)).
						Chain(id, 1, 0, in, nf, out).
						MustBuild()
				}
				_, err := ro.Install(ctx, req)
				if errors.Is(err, unify.ErrBusy) {
					r--
					continue
				}
				if err != nil {
					errs[w] = fmt.Errorf("round %d install: %w", r, err)
					return
				}
				if err := ro.Remove(ctx, id); err != nil {
					errs[w] = fmt.Errorf("round %d remove: %w", r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	assertShardInvariants(t, ro)
	if got := len(ro.Services()); got != 0 {
		t.Fatalf("services leaked: %d", got)
	}
}

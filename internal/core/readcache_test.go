package core

// Tests of the generation-keyed read path: the cut cache, the virtualizer
// memoization, merge-error propagation, and — run with -race — a harness
// where readers hammer View/DoV through the caches while writers churn
// single- and multi-shard commits. The invariants: a view is never torn
// (multi-shard commits appear atomically), never stale past a completed
// commit (an Install/Remove that returned is visible to the next read), and
// always corresponds to one consistent generation vector.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// TestCutCacheGenerationKeyed: between commits, repeated DoV reads are served
// from one cached sealed cut (pointer-identical); a commit invalidates it.
func TestCutCacheGenerationKeyed(t *testing.T) {
	ro, _ := lineRO(t, 3, 0, nil)
	d1 := mustDoV(t, ro)
	d2 := mustDoV(t, ro)
	if d1 != d2 {
		t.Fatal("steady-state DoV reads must share one cached cut")
	}
	if !d1.Sealed() {
		t.Fatal("the cached cut must be sealed")
	}
	st := ro.PipelineStats()
	if st.CutCache.Hits == 0 {
		t.Fatalf("no cut-cache hit recorded: %+v", st.CutCache)
	}

	if _, err := ro.Install(context.Background(), chainReq(t, "svc", "sap1", "b0", "fw")); err != nil {
		t.Fatal(err)
	}
	d3 := mustDoV(t, ro)
	if d3 == d1 {
		t.Fatal("a committed install must invalidate the cached cut")
	}
	if _, ok := d3.NFs["svc-nf"]; !ok {
		t.Fatalf("fresh cut misses the committed NF: %v", d3.NFIDs())
	}
	st = ro.PipelineStats()
	if st.CutCache.Invalidations == 0 {
		t.Fatalf("invalidation not counted: %+v", st.CutCache)
	}
	if err := ro.Remove(context.Background(), "svc"); err != nil {
		t.Fatal(err)
	}
}

// TestViewMemoization: View is a pointer return on the steady state, rebuilt
// exactly when a shard generation moves; NoReadCache disables the sharing.
func TestViewMemoization(t *testing.T) {
	ro, _ := lineRO(t, 3, 0, nil)
	ctx := context.Background()
	v1, err := ro.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ro.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("steady-state views must share one memoized graph")
	}
	if !v1.Sealed() {
		t.Fatal("the memoized view must be sealed")
	}
	if st := ro.PipelineStats(); st.ViewCache.Hits == 0 {
		t.Fatalf("no view-cache hit recorded: %+v", st.ViewCache)
	}

	if _, err := ro.Install(ctx, chainReq(t, "svc", "sap1", "b0", "fw")); err != nil {
		t.Fatal(err)
	}
	v3, err := ro.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("a committed install must invalidate the memoized view")
	}
	if st := ro.PipelineStats(); st.ViewCache.Invalidations == 0 {
		t.Fatalf("view invalidation not counted: %+v", st.ViewCache)
	}

	// The uncached baseline recomputes per call.
	un, _ := lineROWith(t, 2, Config{ID: "un", NoReadCache: true})
	u1, err := un.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := un.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if u1 == u2 {
		t.Fatal("NoReadCache views must not be shared")
	}
	if st := un.PipelineStats(); st.ViewCache.Hits != 0 || st.CutCache.Hits != 0 {
		t.Fatalf("caches hit while disabled: %+v", st)
	}
}

// TestLocalViewMemoization: the leaf orchestrator's exported view is memoized
// per substrate generation.
func TestLocalViewMemoization(t *testing.T) {
	lo := leafDomain(t, "mn", "sap1", "border", &recordingProgrammer{})
	ctx := context.Background()
	v1, err := lo.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := lo.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("steady-state leaf views must share one memoized graph")
	}
	if st := lo.ViewCacheStats(); st.Hits == 0 {
		t.Fatalf("no hit recorded: %+v", st)
	}
	if _, err := lo.Install(ctx, chainReq(t, "svc", "sap1", "border", "fw")); err != nil {
		t.Fatal(err)
	}
	v3, err := lo.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("a committed install must invalidate the leaf view")
	}
	if st := lo.ViewCacheStats(); st.Invalidations == 0 {
		t.Fatalf("invalidation not counted: %+v", st)
	}
}

// TestScopedCutCache: a narrowed (shard-subset) admission group plans on a
// cached merged cut of exactly its subset — a repeat of the same footprint
// re-merges nothing while none of the subset's shards committed, and a commit
// on any member invalidates the entry (counted under the shared CutCache
// stats).
func TestScopedCutCache(t *testing.T) {
	ro, _ := lineRO(t, 4, 0, nil)
	ctx := context.Background()
	// An unmappable request anchored at the d1 border SAPs: its shard set is
	// the proper subset {d0,d1,d2}, its plan always rejects (unsupported NF
	// type), so planning never commits — the scoped cut must be reused.
	bad := func(id string) *nffg.NFFG {
		return nffg.NewBuilder(id).SAP("b0").SAP("b1").
			NF(nffg.ID(id+"-nf"), "no-such-type", 2, res(2, 512)).
			Chain(id, 1, 0, "b0", nffg.ID(id+"-nf"), "b1").
			MustBuild()
	}
	if set := ro.ShardSet(bad("probe")); len(set) < 2 || len(set) >= 4 {
		t.Fatalf("expected a proper multi-shard subset, got %v", set)
	}
	if _, err := ro.Install(ctx, bad("s1")); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("expected rejection, got %v", err)
	}
	st1 := ro.PipelineStats()
	if _, err := ro.Install(ctx, bad("s2")); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("expected rejection, got %v", err)
	}
	st2 := ro.PipelineStats()
	if st2.CutCache.Misses != st1.CutCache.Misses {
		t.Fatalf("second plan re-merged a cut: misses %d -> %d", st1.CutCache.Misses, st2.CutCache.Misses)
	}
	// One hit for the scoped subset, one for the escalated full-DoV retry.
	if st2.CutCache.Hits < st1.CutCache.Hits+2 {
		t.Fatalf("expected scoped + full cut hits: %+v -> %+v", st1.CutCache, st2.CutCache)
	}

	// A commit that bumps a subset member's generation makes the cached
	// scoped cut stale: the next plan re-merges and counts an invalidation.
	if _, err := ro.Install(ctx, chainReq(t, "svc", "sap1", "b0", "fw")); err != nil {
		t.Fatal(err)
	}
	st3 := ro.PipelineStats()
	if _, err := ro.Install(ctx, bad("s3")); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("expected rejection, got %v", err)
	}
	st4 := ro.PipelineStats()
	if st4.CutCache.Misses == st3.CutCache.Misses {
		t.Fatal("a commit on a subset member must invalidate the scoped cut")
	}
	if st4.CutCache.Invalidations == st3.CutCache.Invalidations {
		t.Fatal("scoped-cut invalidation not counted")
	}
	if err := ro.Remove(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
}

// TestMergeErrorPropagation: an unmergeable all-shard cut (colliding shard
// exports) surfaces as an error on View and DoV — not as a silently
// incomplete cut — and is counted in PipelineStats.MergeErrors.
func TestMergeErrorPropagation(t *testing.T) {
	ro, _ := lineRO(t, 2, 0, nil)
	if _, err := ro.DoV(); err != nil {
		t.Fatal(err)
	}
	// White-box fault injection: overwrite d1's shard graph with one that
	// re-exports d0's aggregate, which no merge order can reconcile. The
	// generation bump keeps the commit invariant and defeats the cut cache.
	evil := nffg.New("evil")
	if err := evil.AddInfra(&nffg.Infra{ID: "bisbis@d0", Type: "bisbis", Domain: "d1"}); err != nil {
		t.Fatal(err)
	}
	dir, _ := ro.snapshotDir()
	sh := dir.shards["d1"]
	sh.mu.Lock()
	sh.dov = evil.Seal()
	sh.gen++
	sh.commits++
	sh.mu.Unlock()

	if _, err := ro.DoV(); err == nil {
		t.Fatal("unmergeable cut must surface an error from DoV")
	}
	if _, err := ro.View(context.Background()); err == nil {
		t.Fatal("unmergeable cut must surface an error from View")
	}
	if st := ro.PipelineStats(); st.MergeErrors == 0 {
		t.Fatalf("merge errors not counted: %+v", st)
	}
}

// TestReadCacheRaceStorm is the -race harness for cache invalidation under
// concurrency: reader goroutines hammer View and DoV through the caches
// while writers churn single-shard and cross-shard install/remove cycles.
// Every writer verifies its own commits are immediately visible (never
// stale past a completed commit); readers verify every observed view is a
// consistent cut (cross-shard services appear atomically, graphs validate).
func TestReadCacheRaceStorm(t *testing.T) {
	const (
		domains = 3
		rounds  = 12
		readers = 4
	)
	// Transparent top-level view: the observed views carry the DoV's NFs, so
	// readers can check commit atomicity on the view content itself.
	ro, _ := meshROCfg(t, domains, 2, Config{ID: "ro", Virtualizer: Transparent{}})
	ctx := context.Background()

	stop := make(chan struct{})
	readerErr := make(chan error, readers)
	var rwg sync.WaitGroup
	for g := 0; g < readers; g++ {
		rwg.Add(1)
		go func(g int) {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var graph *nffg.NFFG
				var err error
				if g%2 == 0 {
					graph, err = ro.View(ctx)
					if errors.Is(err, ErrEmptyView) {
						continue
					}
				} else {
					graph, err = ro.DoV()
				}
				if err != nil {
					readerErr <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
				if !graph.Sealed() {
					readerErr <- fmt.Errorf("reader %d: observed an unsealed shared graph", g)
					return
				}
				// Atomicity of cross-shard commits: a crossChain's two NFs
				// commit via the ordered two-phase path and must never be
				// observed half-applied in any cut.
				for id := range graph.NFs {
					s := string(id)
					if !strings.HasSuffix(s, "-nfa") {
						continue
					}
					peer := nffg.ID(strings.TrimSuffix(s, "-nfa") + "-nfb")
					if _, ok := graph.NFs[peer]; !ok {
						readerErr <- fmt.Errorf("reader %d: torn view: %s without %s", g, id, peer)
						return
					}
				}
				if err := graph.Validate(); err != nil {
					readerErr <- fmt.Errorf("reader %d: invalid cut: %w", g, err)
					return
				}
			}
		}(g)
	}

	// sees reports whether the current view holds the NF (views are read
	// through the cache — a stale hit would fail the visibility assertions).
	sees := func(nf nffg.ID) bool {
		v, err := ro.View(ctx)
		if err != nil {
			t.Errorf("view during storm: %v", err)
			return false
		}
		_, ok := v.NFs[nf]
		return ok
	}

	var wwg sync.WaitGroup
	writerErrs := make([]error, domains)
	for w := 0; w < domains; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("st-w%d-r%d", w, r)
				var req *nffg.NFFG
				probe := nffg.ID(id + "-nf")
				if w < domains-1 && r%2 == 1 {
					// Slot 1 keeps the cross-chain's SAPs disjoint from every
					// neighbor's slot-0 chain (no flowrule conflicts).
					req = crossChain(t, id, w, 1)
					probe = nffg.ID(id + "-nfa")
				} else {
					req = slotChain(t, id, w, 0)
				}
				_, err := ro.Install(ctx, req)
				if errors.Is(err, unify.ErrBusy) {
					r--
					continue
				}
				if err != nil {
					writerErrs[w] = fmt.Errorf("round %d install: %w", r, err)
					return
				}
				if !sees(probe) {
					writerErrs[w] = fmt.Errorf("round %d: view stale after completed install of %s", r, id)
					return
				}
				if err := ro.Remove(ctx, id); err != nil {
					writerErrs[w] = fmt.Errorf("round %d remove: %w", r, err)
					return
				}
				if sees(probe) {
					writerErrs[w] = fmt.Errorf("round %d: view stale after completed remove of %s", r, id)
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	rwg.Wait()
	close(readerErr)
	for err := range readerErr {
		t.Fatal(err)
	}
	for w, err := range writerErrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	// Drained: the final cut is clean, and the storm actually exercised the
	// caches in both directions.
	final := mustDoV(t, ro)
	if len(final.NFs) != 0 {
		t.Fatalf("NFs leaked into the final cut: %v", final.NFIDs())
	}
	st := ro.PipelineStats()
	if st.CutCache.Hits == 0 || st.CutCache.Invalidations == 0 {
		t.Fatalf("storm did not exercise the cut cache: %+v", st.CutCache)
	}
	if st.ViewCache.Hits == 0 || st.ViewCache.Invalidations == 0 {
		t.Fatalf("storm did not exercise the view cache: %+v", st.ViewCache)
	}
	assertShardInvariants(t, ro)
}

// TestConcurrentAttachIndexCompleteness: concurrent Attaches into ONE shard
// (SingleShard) must never lose a child's reverse-index contribution — a late
// writer recomputes from the shard's current graph and is generation-guarded,
// so every child's SAPs resolve in ShardSet afterwards.
func TestConcurrentAttachIndexCompleteness(t *testing.T) {
	const domains = 6
	for round := 0; round < 5; round++ {
		ro := NewResourceOrchestrator(Config{ID: "ro", ShardKey: SingleShard})
		var wg sync.WaitGroup
		errs := make([]error, domains)
		for i := 0; i < domains; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				name := fmt.Sprintf("d%d", i)
				sub := nffg.NewBuilder(name).
					BiSBiS(nffg.ID(name+"-n"), name, 4, res(8, 4096), "fw").
					SAP(nffg.ID(name+"-in")).SAP(nffg.ID(name+"-out")).
					Link("i", nffg.ID(name+"-in"), "1", nffg.ID(name+"-n"), "1", 100, 1).
					Link("o", nffg.ID(name+"-n"), "2", nffg.ID(name+"-out"), "1", 100, 1).
					MustBuild()
				lo, err := NewLocalOrchestrator(LocalConfig{ID: name, Substrate: sub})
				if err != nil {
					errs[i] = err
					return
				}
				errs[i] = ro.Attach(context.Background(), lo)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("attach %d: %v", i, err)
			}
		}
		for i := 0; i < domains; i++ {
			req := chainReq(t, fmt.Sprintf("probe%d", i),
				nffg.ID(fmt.Sprintf("d%d-in", i)), nffg.ID(fmt.Sprintf("d%d-out", i)), "fw")
			req.NFs[nffg.ID(fmt.Sprintf("probe%d-nf", i))].Host = nffg.ID(fmt.Sprintf("bisbis@d%d", i))
			if got := ro.ShardSet(req); len(got) != 1 || got[0] != "dov" {
				t.Fatalf("round %d: d%d's contribution lost from the index: ShardSet=%v", round, i, got)
			}
		}
	}
}

package core

// The generation-keyed read path: every layer above the resource orchestrator
// — virtualizers, monitoring, the admission planner, the northbound view API
// — is a *reader* of the DoV, and between commits the DoV does not change.
// Reads are therefore served from two caches keyed by the vector of shard
// generations (cheap to snapshot: the shard directory already holds a per-
// shard gen under its lock):
//
//   - the cut cache holds the merged all-shard consistent cut, so DoV() and
//     batch planning skip nffg.Merge entirely while no shard committed;
//   - the view cache holds the virtualizer's output over that cut, so View()
//     is a pointer return on the steady state.
//
// Cached graphs are Sealed (see nffg.Seal): one immutable graph is shared by
// every reader instead of being defensively copied per call, and a reader
// that needs to mutate copies lazily. A commit invalidates both caches
// implicitly — it bumps its shards' generations, so the next read's vector no
// longer matches and the cut is rebuilt; there is no explicit invalidation
// hook to forget.
//
// The same attach-time bookkeeping also maintains the reverse index (view
// node -> owning shards) that lets ShardSet narrow requests without reading
// any shard graph — including requests with unpinned NFs, which previously
// could not be narrowed at all and serialized as exclusive global groups
// through admission's lanes.

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/unify-repro/escape/internal/nffg"
)

// CacheStats are one read cache's cumulative counters.
type CacheStats struct {
	// Hits counts reads served from the cached graph.
	Hits uint64 `json:"hits"`
	// Misses counts reads that had to rebuild (first read, or a generation
	// moved).
	Misses uint64 `json:"misses"`
	// Invalidations counts misses that replaced a previously valid entry —
	// i.e. rebuilds caused by a committed DoV change rather than a cold cache.
	Invalidations uint64 `json:"invalidations"`
}

// cacheCounters is the atomic backing of CacheStats.
type cacheCounters struct {
	hits, misses, invalidations atomic.Uint64
}

func (c *cacheCounters) snapshot() CacheStats {
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// genVec identifies one consistent cut: the shard keys (in key order) and the
// generation each shard had when the cut was taken. Two equal vectors denote
// byte-identical cuts, because a shard's graph is replaced only under a
// generation bump.
type genVec struct {
	keys []string
	gens []uint64
}

func (v genVec) equal(o genVec) bool {
	return slices.Equal(v.keys, o.keys) && slices.Equal(v.gens, o.gens)
}

// cutEntry is one cached merged all-shard cut. graph is sealed (or nil when
// no shard held a view at cut time).
type cutEntry struct {
	vec   genVec
	graph *nffg.NFFG
}

// viewEntry is one cached virtualizer output over a cut. view is sealed.
type viewEntry struct {
	vec  genVec
	view *nffg.NFFG
}

// currentCut snapshots a consistent (graphs, generation-vector) cut across
// every shard. The per-shard graphs are immutable snapshots; only the short
// all-lock rendezvous in snapshotCut is paid per read.
func (ro *ResourceOrchestrator) currentCut() (graphs []*nffg.NFFG, vec genVec) {
	dir, _ := ro.snapshotDir()
	shs := dir.ordered(dir.keys)
	graphs, gens := snapshotCut(shs)
	keys := make([]string, len(shs))
	for i, s := range shs {
		keys[i] = s.key
	}
	return graphs, genVec{keys: keys, gens: gens}
}

// mergeCut merges the live graphs of one cut into a fresh pre-sized graph —
// the uncached merge shared by the cut cache and scoped (narrowed-group)
// planning. Returns nil when no graph is live, and the single live graph
// itself (a sealed shard snapshot) when there is exactly one. A merge
// failure (colliding shard exports) is surfaced to the caller and counted in
// PipelineStats.MergeErrors instead of silently serving an incomplete cut.
func (ro *ResourceOrchestrator) mergeCut(id string, graphs []*nffg.NFFG) (*nffg.NFFG, error) {
	var live []*nffg.NFFG
	nInfras, nNFs, nSAPs := 0, 0, 0
	for _, g := range graphs {
		if g != nil {
			live = append(live, g)
			nInfras += len(g.Infras)
			nNFs += len(g.NFs)
			nSAPs += len(g.SAPs)
		}
	}
	switch len(live) {
	case 0:
		return nil, nil
	case 1:
		return live[0], nil
	}
	m := nffg.NewSized(id, nInfras, nNFs, nSAPs)
	for _, g := range live {
		if err := m.Merge(g); err != nil {
			ro.stats.mergeErrors.Add(1)
			return nil, fmt.Errorf("core %s: merging shard views: %w", ro.id, err)
		}
	}
	// Sealed here, before the graph can escape to another goroutine: every
	// return path of mergeCut hands out a sealed (or nil) graph, and re-
	// sealing a shared snapshot later would be a racy write.
	return m.Seal(), nil
}

// mergedFromCut returns the merged graph of a full-DoV cut, served from the
// cut cache when the generation vector still matches and rebuilt (then
// sealed and cached) otherwise. Returns nil when no shard holds a view.
func (ro *ResourceOrchestrator) mergedFromCut(graphs []*nffg.NFFG, vec genVec) (*nffg.NFFG, error) {
	if !ro.noReadCache {
		if e := ro.cutCache.Load(); e != nil && e.vec.equal(vec) {
			ro.cutStats.hits.Add(1)
			return e.graph, nil
		}
	}
	ro.cutStats.misses.Add(1)
	merged, err := ro.mergeCut(ro.id+"-dov", graphs)
	if err != nil {
		return nil, err
	}
	if !ro.noReadCache {
		if old := ro.cutCache.Load(); old != nil {
			ro.cutStats.invalidations.Add(1)
		}
		ro.cutCache.Store(&cutEntry{vec: vec, graph: merged})
	}
	return merged, nil
}

// --- scoped cuts -------------------------------------------------------------

// scopedCutCap bounds how many distinct shard subsets keep a cached merged
// cut. Subsets are created by admission's narrowed groups, so in practice the
// population is small (recurring request footprints); beyond the cap an
// arbitrary entry is evicted — the cache is a pure performance artifact, so
// any eviction policy is correct.
const scopedCutCap = 64

// scopedCutCache caches merged cuts of shard SUBSETS (narrowed admission
// groups), keyed by the subset's sorted key list and validated against its
// generation vector — the same discipline as the all-shard cut cache, which
// stays a separate single atomic entry because every reader hits it. Hits,
// misses and invalidations ride the same cutStats counters.
type scopedCutCache struct {
	mu      sync.Mutex
	entries map[string]*cutEntry
}

// mergedFromScopedCut returns the merged graph of a shard-subset cut, served
// from the scoped cut cache while the subset's generation vector is unmoved
// and rebuilt (then cached) otherwise. A commit on any subset member bumps
// its generation, so the next read's vector mismatches and the cut is
// remerged — invalidation is implicit, exactly like the all-shard cache.
func (ro *ResourceOrchestrator) mergedFromScopedCut(graphs []*nffg.NFFG, vec genVec) (*nffg.NFFG, error) {
	key := strings.Join(vec.keys, "\x00")
	if !ro.noReadCache {
		ro.scopedCuts.mu.Lock()
		e := ro.scopedCuts.entries[key]
		ro.scopedCuts.mu.Unlock()
		if e != nil && e.vec.equal(vec) {
			ro.cutStats.hits.Add(1)
			return e.graph, nil
		}
	}
	ro.cutStats.misses.Add(1)
	merged, err := ro.mergeCut(ro.id+"-plan", graphs)
	if err != nil {
		return nil, err
	}
	if !ro.noReadCache {
		ro.scopedCuts.mu.Lock()
		if ro.scopedCuts.entries == nil {
			ro.scopedCuts.entries = make(map[string]*cutEntry, scopedCutCap)
		}
		if _, stale := ro.scopedCuts.entries[key]; stale {
			ro.cutStats.invalidations.Add(1)
		} else if len(ro.scopedCuts.entries) >= scopedCutCap {
			for k := range ro.scopedCuts.entries {
				delete(ro.scopedCuts.entries, k)
				break
			}
		}
		ro.scopedCuts.entries[key] = &cutEntry{vec: vec, graph: merged}
		ro.scopedCuts.mu.Unlock()
	}
	return merged, nil
}

// --- reverse index -----------------------------------------------------------

// shardContrib is one shard's recorded contribution to the reverse index,
// tagged with the shard generation the contributing graph carried so a late
// Attach writer can never clobber a newer sibling's record.
type shardContrib struct {
	gen   uint64
	nodes map[nffg.ID]bool
}

// shardContribution computes the node identifiers one shard's graph answers
// for on the read/estimate path: its DoV infra nodes, its (border) SAPs, and
// the virtualizer view nodes its infras aggregate into. Commits never change
// this membership — embeddings add NFs and flowrules, not infras or SAPs —
// so the index only needs rebuilding at attach time.
func (ro *ResourceOrchestrator) shardContribution(g *nffg.NFFG) map[nffg.ID]bool {
	out := make(map[nffg.ID]bool, len(g.Infras)+len(g.SAPs))
	for id := range g.Infras {
		out[id] = true
	}
	for id := range g.SAPs {
		out[id] = true
	}
	if v, err := ro.virt.View(g); err == nil {
		for id := range v.Infras {
			out[id] = true
		}
	}
	return out
}

// rebuildIndexLocked derives the node -> sorted shard keys index from the
// per-shard contributions. Callers hold ro.mu; the maps are replaced
// wholesale so ShardSet can read a snapshot lock-free after one mu hop.
func (ro *ResourceOrchestrator) rebuildIndexLocked() {
	idx := make(map[nffg.ID][]string)
	keys := make([]string, 0, len(ro.contrib))
	for k := range ro.contrib {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic, pre-sorted per-node key lists
	for _, key := range keys {
		for node := range ro.contrib[key].nodes {
			idx[node] = append(idx[node], key)
		}
	}
	ro.index = idx
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// checkDetachInvariants asserts the exact post-detach bookkeeping contract:
// the directory, ownership map, reverse index, reservations, and service
// table all agree with each other and contain nothing from dropped shards.
func checkDetachInvariants(t *testing.T, ro *ResourceOrchestrator) {
	t.Helper()
	ro.mu.Lock()
	defer ro.mu.Unlock()

	live := map[string]bool{}
	for _, key := range ro.dir.keys {
		live[key] = true
		sh := ro.dir.shards[key]
		sh.mu.Lock()
		gen, commits := sh.gen, sh.commits
		sh.mu.Unlock()
		if gen != commits {
			t.Errorf("shard %s: gen %d != commits %d", key, gen, commits)
		}
	}
	if len(ro.dir.shards) != len(ro.dir.keys) {
		t.Errorf("directory: %d shards vs %d keys", len(ro.dir.shards), len(ro.dir.keys))
	}
	for child, key := range ro.dir.childShard {
		if !live[key] {
			t.Errorf("childShard[%s] -> dropped shard %s", child, key)
		}
	}
	for key := range ro.contrib {
		if !live[key] {
			t.Errorf("contrib holds dropped shard %s", key)
		}
	}
	for node, keys := range ro.index {
		for _, key := range keys {
			if !live[key] {
				t.Errorf("index[%s] references dropped shard %s", node, key)
			}
		}
	}
	for inf, child := range ro.owner {
		if _, ok := ro.dir.childShard[child]; !ok {
			t.Errorf("owner[%s] -> detached child %s", inf, child)
		}
	}
	for node := range ro.departed {
		if len(ro.index[node]) != 0 {
			t.Errorf("departed node %s still indexed", node)
		}
	}
	// Reservations must belong to live services, and vice versa: a displaced
	// service leaves no NF/hop identifier behind.
	for nf, svc := range ro.nfOwner {
		if _, ok := ro.services[svc]; !ok {
			t.Errorf("nfOwner[%s] -> unknown service %s", nf, svc)
		}
	}
	for hop, svc := range ro.hopOwner {
		if _, ok := ro.services[svc]; !ok {
			t.Errorf("hopOwner[%s] -> unknown service %s", hop, svc)
		}
	}
	for id, rec := range ro.services {
		for _, key := range rec.shards {
			if !live[key] {
				t.Errorf("service %s touches dropped shard %s", id, key)
			}
		}
	}
}

func TestDetachUnwindsEverything(t *testing.T) {
	ro, _ := lineRO(t, 3, 0, nil)

	// One service pinned on the victim, one on a survivor.
	victimReq := chainReq(t, "on-d1", "b0", "b1", "fw")
	victimReq.NFs["on-d1-nf"].Host = "bisbis@d1"
	if _, err := ro.Install(context.Background(), victimReq); err != nil {
		t.Fatal(err)
	}
	survivorReq := chainReq(t, "on-d0", "sap1", "b0", "dpi")
	survivorReq.NFs["on-d0-nf"].Host = "bisbis@d0"
	if _, err := ro.Install(context.Background(), survivorReq); err != nil {
		t.Fatal(err)
	}

	report, err := ro.Detach(context.Background(), "d1")
	if err != nil {
		t.Fatal(err)
	}
	if report.Child != "d1" || report.Shard != "d1" {
		t.Fatalf("report: %+v", report)
	}
	if len(report.Displaced) != 1 || report.Displaced[0].ServiceID != "on-d1" {
		t.Fatalf("displaced: %+v", report.Displaced)
	}
	if report.Displaced[0].Request == nil {
		t.Fatal("displaced service lost its request graph")
	}

	checkDetachInvariants(t, ro)
	ro.mu.Lock()
	if _, ok := ro.services["on-d1"]; ok {
		t.Error("displaced service still in table")
	}
	if _, ok := ro.services["on-d0"]; !ok {
		t.Error("survivor service dropped")
	}
	if ro.departed["bisbis@d1"] != "d1" {
		t.Errorf("departed tombstone: %v", ro.departed)
	}
	ro.mu.Unlock()

	// The DoV no longer contains the victim's node; reads stay consistent.
	dov := mustDoV(t, ro)
	if _, ok := dov.Infras["bisbis@d1"]; ok {
		t.Error("detached infra still in DoV")
	}
	if err := dov.Validate(); err != nil {
		t.Fatalf("post-detach DoV: %v", err)
	}

	// A request pinned to the departed node fails typed, not opaque.
	dead := chainReq(t, "late", "sap1", "b0", "fw")
	dead.NFs["late-nf"].Host = "bisbis@d1"
	if _, err := ro.Install(context.Background(), dead); !errors.Is(err, unify.ErrDomainUnavailable) {
		t.Fatalf("install on departed node: %v", err)
	}

	// Double detach: unknown.
	if _, err := ro.Detach(context.Background(), "d1"); !errors.Is(err, domain.ErrUnknown) {
		t.Fatalf("double detach: %v", err)
	}
}

func TestDetachRequiresPerDomainShard(t *testing.T) {
	ro := NewResourceOrchestrator(Config{ID: "ro", ShardKey: SingleShard})
	for _, name := range []string{"a", "b"} {
		lo := leafDomain(t, name, nffg.ID("sap-"+name), nffg.ID("border-"+name), &recordingProgrammer{})
		if err := ro.Attach(context.Background(), lo); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ro.Detach(context.Background(), "a"); err == nil {
		t.Fatal("shared-shard detach must be refused")
	}
}

func TestDetachReattachCycle(t *testing.T) {
	ro, _ := lineRO(t, 3, 0, nil)

	ro.mu.Lock()
	genBefore := ro.dir.shards["d2"].gen
	ro.mu.Unlock()

	if _, err := ro.Detach(context.Background(), "d2"); err != nil {
		t.Fatal(err)
	}
	// Re-attach a fresh leaf under the same name: the tombstones clear and
	// the shard's generation resumes past the detached one (the journal
	// replay contract — per-shard records stay gen-monotone forever).
	lo := leafDomain(t, "d2", "b1", "sap2", &recordingProgrammer{})
	if err := ro.Attach(context.Background(), lo); err != nil {
		t.Fatal(err)
	}
	ro.mu.Lock()
	if len(ro.departed) != 0 {
		t.Errorf("tombstones survived re-attach: %v", ro.departed)
	}
	genAfter := ro.dir.shards["d2"].gen
	ro.mu.Unlock()
	if genAfter <= genBefore {
		t.Fatalf("shard generation regressed across detach/attach: %d -> %d", genBefore, genAfter)
	}
	checkDetachInvariants(t, ro)

	req := chainReq(t, "back", "b1", "sap2", "fw")
	req.NFs["back-nf"].Host = "bisbis@d2"
	if _, err := ro.Install(context.Background(), req); err != nil {
		t.Fatalf("install after re-attach: %v", err)
	}
}

// TestDetachStorm races runtime Detach/Attach cycles of one domain against
// concurrent installs, removals, and DoV reads across the fleet. Run under
// -race. Asserts: readers never see a torn cut (every DoV merge succeeds and
// validates), installs fail only with the sanctioned errors, and after the
// storm the reverse index, reservation tables, and service table are exactly
// consistent (checkDetachInvariants).
func TestDetachStorm(t *testing.T) {
	ro, _ := lineRO(t, 4, 0, nil)
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var torn atomic.Int32
	var badErr atomic.Pointer[string]

	// Readers: the DoV must always merge and validate — stale is fine, torn
	// is not.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				dov, err := ro.DoV()
				if err != nil {
					torn.Add(1)
					return
				}
				if err := dov.Validate(); err != nil {
					torn.Add(1)
					return
				}
			}
		}()
	}

	sanctioned := func(err error) bool {
		return err == nil ||
			errors.Is(err, unify.ErrDomainUnavailable) ||
			errors.Is(err, unify.ErrBusy) ||
			errors.Is(err, unify.ErrRejected) ||
			errors.Is(err, unify.ErrUnknownService)
	}

	// Writers: half the installs target the flapping domain d3, half the
	// stable d0; each goroutine churns install/remove so reservations and
	// releases race the membership changes.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("storm-%d-%d", w, i)
				var req *nffg.NFFG
				if i%2 == 0 {
					req = chainReq(t, id, "b2", "sap2", "fw")
					req.NFs[nffg.ID(id+"-nf")].Host = "bisbis@d3"
				} else {
					req = chainReq(t, id, "sap1", "b0", "fw")
					req.NFs[nffg.ID(id+"-nf")].Host = "bisbis@d0"
				}
				_, err := ro.Install(ctx, req)
				if !sanctioned(err) {
					s := err.Error()
					badErr.Store(&s)
					return
				}
				if err == nil {
					if rerr := ro.Remove(ctx, id); !sanctioned(rerr) {
						s := rerr.Error()
						badErr.Store(&s)
						return
					}
				}
			}
		}(w)
	}

	// The flapper: detach d3, re-attach a fresh leaf under the same name.
	deadline := time.After(2 * time.Second)
	cycles := 0
flap:
	for {
		select {
		case <-deadline:
			break flap
		default:
		}
		if _, err := ro.Detach(ctx, "d3"); err != nil && !errors.Is(err, unify.ErrBusy) {
			t.Fatalf("detach cycle %d: %v", cycles, err)
		}
		lo := leafDomain(t, "d3", "b2", "sap2", &recordingProgrammer{})
		if err := ro.Attach(ctx, lo); err != nil {
			t.Fatalf("re-attach cycle %d: %v", cycles, err)
		}
		cycles++
	}
	close(stop)
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatal("reader observed a torn or invalid DoV cut")
	}
	if s := badErr.Load(); s != nil {
		t.Fatalf("writer got unsanctioned error: %s", *s)
	}
	if cycles == 0 {
		t.Fatal("storm completed no detach/attach cycles")
	}
	t.Logf("storm: %d detach/attach cycles", cycles)

	// Drain whatever the writers left installed, then demand exact cleanup.
	for _, id := range ro.Services() {
		if err := ro.Remove(ctx, id); err != nil && !errors.Is(err, unify.ErrUnknownService) {
			t.Fatalf("drain %s: %v", id, err)
		}
	}
	checkDetachInvariants(t, ro)
}

package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/unify-repro/escape/internal/nffg"
)

// TestROConcurrentInstalls hammers the orchestrator from many goroutines:
// every accepted service must be fully consistent, every rejected one must
// leave no trace, and the final capacity accounting must balance.
func TestROConcurrentInstalls(t *testing.T) {
	ro, loA, loB := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Alternate directions so classifiers differ; still more
			// requests than distinct (src,dst) pairs, so some must lose.
			var req *nffg.NFFG
			if w%2 == 0 {
				req = chainReq(t, fmt.Sprintf("con%02d", w), "sap1", "sap2", "fw")
			} else {
				req = chainReq(t, fmt.Sprintf("con%02d", w), "sap2", "sap1", "nat")
			}
			_, err := ro.Install(context.Background(), req)
			results[w] = err
		}(w)
	}
	wg.Wait()
	accepted := 0
	for _, err := range results {
		if err == nil {
			accepted++
		}
	}
	// Exactly one service per direction can hold the untagged ingress
	// classifier at a time.
	if accepted != 2 {
		t.Fatalf("want exactly 2 accepted (one per direction), got %d", accepted)
	}
	if got := len(ro.Services()); got != accepted {
		t.Fatalf("RO tracks %d, accepted %d", got, accepted)
	}
	if got := len(loA.Services()) + len(loB.Services()); got < accepted {
		t.Fatalf("children track %d sub-services for %d accepted", got, accepted)
	}
	// Remove everything concurrently; state must drain to zero.
	ids := ro.Services()
	var wg2 sync.WaitGroup
	for _, id := range ids {
		wg2.Add(1)
		go func(id string) {
			defer wg2.Done()
			if err := ro.Remove(context.Background(), id); err != nil {
				t.Errorf("remove %s: %v", id, err)
			}
		}(id)
	}
	wg2.Wait()
	if len(ro.Services())+len(loA.Services())+len(loB.Services()) != 0 {
		t.Fatal("state left after concurrent removal")
	}
}

// TestConcurrentViewsDuringInstalls verifies View() stays consistent (no
// torn reads) while installs mutate the DoV.
func TestConcurrentViewsDuringInstalls(t *testing.T) {
	ro, _, _ := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("v%02d", i)
			req := chainReq(t, id, "sap1", "sap2", "fw")
			if _, err := ro.Install(context.Background(), req); err == nil {
				_ = ro.Remove(context.Background(), id)
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			v, err := ro.View(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := v.Validate(); err != nil {
				t.Fatalf("torn view: %v", err)
			}
		}
	}
}

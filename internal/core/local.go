package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/embed"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// Programmer is the technology-specific half of a leaf domain: it receives
// configuration deltas (NF lifecycle + flowrule changes) and realizes them on
// concrete infrastructure — OpenFlow flow-mods and NETCONF actions in the
// Mininet domain, REST calls in OpenStack, LSI/container operations on the
// Universal Node.
type Programmer interface {
	// Commit applies a delta. cfg is the complete desired state for
	// reference (e.g. to resolve ports). Commit must either fully apply the
	// delta or leave the infrastructure unchanged.
	Commit(delta *nffg.Delta, cfg *nffg.NFFG) error
}

// ProgrammerFunc adapts a function to the Programmer interface.
type ProgrammerFunc func(delta *nffg.Delta, cfg *nffg.NFFG) error

// Commit implements Programmer.
func (f ProgrammerFunc) Commit(delta *nffg.Delta, cfg *nffg.NFFG) error { return f(delta, cfg) }

// LocalOrchestrator is the UNIFY-conform local orchestrator every
// infrastructure domain runs (the paper implements one per technology:
// Mininet's dedicated ESCAPE entity, the OpenStack local orchestrator, the UN
// local orchestrator). It owns the domain's internal substrate, embeds
// incoming requests onto it, and delegates device programming to a
// Programmer. It implements domain.Domain.
type LocalOrchestrator struct {
	id     string
	virt   Virtualizer
	mapper *embed.Mapper
	prog   Programmer
	caps   []domain.Capability

	mu       sync.Mutex
	cfg      *nffg.NFFG // configured substrate: internal topology + deployed state
	services map[string]*embed.Mapping
}

// LocalConfig assembles a LocalOrchestrator.
type LocalConfig struct {
	// ID names the domain.
	ID string
	// Substrate is the domain's internal resource topology (real switches,
	// compute nodes, SAPs including border SAPs).
	Substrate *nffg.NFFG
	// Virtualizer selects the exported view (default SingleBiSBiS named
	// "bisbis@<id>" — domains delegate internals, as in the paper).
	Virtualizer Virtualizer
	// Mapper selects the internal embedding algorithm (default greedy-bt).
	Mapper *embed.Mapper
	// Programmer realizes deltas on devices (default no-op).
	Programmer Programmer
	// Capabilities advertised northbound (default compute+forwarding).
	Capabilities []domain.Capability
}

// NewLocalOrchestrator builds the leaf layer.
func NewLocalOrchestrator(cfg LocalConfig) (*LocalOrchestrator, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("core: local orchestrator needs an ID")
	}
	if cfg.Substrate == nil {
		return nil, fmt.Errorf("core: local orchestrator %s needs a substrate", cfg.ID)
	}
	if err := cfg.Substrate.Validate(); err != nil {
		return nil, fmt.Errorf("core: substrate of %s: %w", cfg.ID, err)
	}
	if cfg.Virtualizer == nil {
		cfg.Virtualizer = SingleBiSBiS{NodeID: nffg.ID("bisbis@" + cfg.ID)}
	}
	if cfg.Mapper == nil {
		cfg.Mapper = embed.NewDefault()
	}
	if cfg.Programmer == nil {
		cfg.Programmer = ProgrammerFunc(func(*nffg.Delta, *nffg.NFFG) error { return nil })
	}
	if cfg.Capabilities == nil {
		cfg.Capabilities = []domain.Capability{domain.CapCompute, domain.CapForwarding}
	}
	return &LocalOrchestrator{
		id:       cfg.ID,
		virt:     cfg.Virtualizer,
		mapper:   cfg.Mapper,
		prog:     cfg.Programmer,
		caps:     cfg.Capabilities,
		cfg:      cfg.Substrate.Copy(),
		services: map[string]*embed.Mapping{},
	}, nil
}

// ID implements unify.Layer.
func (lo *LocalOrchestrator) ID() string { return lo.id }

// Capabilities implements domain.Domain.
func (lo *LocalOrchestrator) Capabilities() []domain.Capability {
	return append([]domain.Capability(nil), lo.caps...)
}

// View implements unify.Layer: the domain's exported virtualization.
func (lo *LocalOrchestrator) View() (*nffg.NFFG, error) {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	return lo.virt.View(lo.cfg)
}

// Internal returns a copy of the internal configured substrate (inspection
// and tests).
func (lo *LocalOrchestrator) Internal() *nffg.NFFG {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	return lo.cfg.Copy()
}

// Install implements unify.Layer: embed the request on the internal
// substrate, program the devices, and record the service.
func (lo *LocalOrchestrator) Install(req *nffg.NFFG) (*unify.Receipt, error) {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	if req.ID == "" {
		return nil, fmt.Errorf("%w: request needs an ID", unify.ErrRejected)
	}
	if _, dup := lo.services[req.ID]; dup {
		return nil, fmt.Errorf("%w: service %s already installed", unify.ErrRejected, req.ID)
	}
	work := req.Copy()
	scope := map[nffg.ID][]nffg.ID{}
	for _, id := range work.NFIDs() {
		nf := work.NFs[id]
		if nf.Host == "" {
			continue
		}
		if _, direct := lo.cfg.Infras[nf.Host]; direct {
			continue
		}
		expanded := lo.virt.Scope(lo.cfg, nf.Host)
		if len(expanded) == 0 {
			return nil, fmt.Errorf("%w: NF %s pinned to unknown view node %s", unify.ErrRejected, id, nf.Host)
		}
		if len(expanded) == 1 {
			nf.Host = expanded[0]
		} else {
			nf.Host = ""
			scope[id] = expanded
		}
	}
	mapping, err := lo.mapper.MapScoped(lo.cfg, work, scope)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	newCfg, err := embed.Apply(lo.cfg, mapping)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	delta, err := nffg.Diff(lo.cfg, newCfg)
	if err != nil {
		return nil, fmt.Errorf("core %s: diff: %w", lo.id, err)
	}
	if err := lo.prog.Commit(delta, newCfg); err != nil {
		return nil, fmt.Errorf("%w: programming failed: %v", unify.ErrRejected, err)
	}
	lo.cfg = newCfg
	lo.services[req.ID] = mapping
	receipt := &unify.Receipt{
		ServiceID:      req.ID,
		Placements:     map[nffg.ID]nffg.ID{},
		HopPaths:       map[string][]string{},
		Decompositions: mapping.Applied,
	}
	for nf, host := range mapping.NFHost {
		receipt.Placements[nf] = host
	}
	for hid, p := range mapping.Paths {
		var nodes []string
		for _, n := range p.Nodes {
			nodes = append(nodes, string(n))
		}
		receipt.HopPaths[hid] = nodes
	}
	return receipt, nil
}

// Remove implements unify.Layer.
func (lo *LocalOrchestrator) Remove(serviceID string) error {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	mapping, ok := lo.services[serviceID]
	if !ok {
		return fmt.Errorf("%w: %s", unify.ErrUnknownService, serviceID)
	}
	newCfg := lo.cfg.Copy()
	if err := embed.Release(newCfg, mapping); err != nil {
		return err
	}
	delta, err := nffg.Diff(lo.cfg, newCfg)
	if err != nil {
		return err
	}
	if err := lo.prog.Commit(delta, newCfg); err != nil {
		return fmt.Errorf("core %s: programming teardown: %w", lo.id, err)
	}
	lo.cfg = newCfg
	delete(lo.services, serviceID)
	return nil
}

// Services implements unify.Layer.
func (lo *LocalOrchestrator) Services() []string {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	out := make([]string, 0, len(lo.services))
	for id := range lo.services {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

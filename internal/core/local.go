package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/embed"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/obs"
	"github.com/unify-repro/escape/internal/unify"
)

// Programmer is the technology-specific half of a leaf domain: it receives
// configuration deltas (NF lifecycle + flowrule changes) and realizes them on
// concrete infrastructure — OpenFlow flow-mods and NETCONF actions in the
// Mininet domain, REST calls in OpenStack, LSI/container operations on the
// Universal Node.
type Programmer interface {
	// Commit applies a delta. cfg is the complete desired state for
	// reference (e.g. to resolve ports). Commit must either fully apply the
	// delta or leave the infrastructure unchanged. ctx carries the caller's
	// deadline/cancellation; a Programmer observing ctx done should stop and
	// report ctx.Err() without applying the delta.
	Commit(ctx context.Context, delta *nffg.Delta, cfg *nffg.NFFG) error
}

// ProgrammerFunc adapts a function to the Programmer interface.
type ProgrammerFunc func(ctx context.Context, delta *nffg.Delta, cfg *nffg.NFFG) error

// Commit implements Programmer.
func (f ProgrammerFunc) Commit(ctx context.Context, delta *nffg.Delta, cfg *nffg.NFFG) error {
	return f(ctx, delta, cfg)
}

// LocalOrchestrator is the UNIFY-conform local orchestrator every
// infrastructure domain runs (the paper implements one per technology:
// Mininet's dedicated ESCAPE entity, the OpenStack local orchestrator, the UN
// local orchestrator). It owns the domain's internal substrate, embeds
// incoming requests onto it, and delegates device programming to a
// Programmer. It implements domain.Domain.
//
// Like the ResourceOrchestrator it uses the snapshot→map→commit pipeline: the
// configured substrate is an immutable value with a generation counter, the
// CPU-bound embedding runs against a snapshot outside the lock, and only the
// generation re-check plus device programming sit in the critical section (a
// domain's devices are programmed one delta at a time, since deltas are
// relative to the configured state).
type LocalOrchestrator struct {
	id     string
	virt   Virtualizer
	mapper *embed.Mapper
	prog   Programmer
	caps   []domain.Capability

	mu       sync.Mutex
	cfg      *nffg.NFFG // immutable sealed snapshot: internal topology + deployed state
	gen      uint64     // bumped on every committed substrate change
	services map[string]*embed.Mapping
	pending  map[string]bool // IDs reserved by in-flight installs

	// viewCache memoizes the exported virtualization per substrate
	// generation: on the steady state View is a pointer return of one sealed
	// graph shared by all readers (see readcache.go for the discipline).
	viewCache atomic.Pointer[loViewEntry]
	viewStats cacheCounters

	// watch broadcasts generation bumps to WaitVersion callers (version.go).
	watch changeNotifier

	// southbound accumulates the device-programming counters this domain's
	// Programmer records (see southbound.go).
	southbound SouthboundRecorder
}

// loViewEntry is one cached (generation, sealed view) pair.
type loViewEntry struct {
	gen  uint64
	view *nffg.NFFG
}

// LocalConfig assembles a LocalOrchestrator.
type LocalConfig struct {
	// ID names the domain.
	ID string
	// Substrate is the domain's internal resource topology (real switches,
	// compute nodes, SAPs including border SAPs).
	Substrate *nffg.NFFG
	// Virtualizer selects the exported view (default SingleBiSBiS named
	// "bisbis@<id>" — domains delegate internals, as in the paper).
	Virtualizer Virtualizer
	// Mapper selects the internal embedding algorithm (default greedy-bt).
	Mapper *embed.Mapper
	// Programmer realizes deltas on devices (default no-op).
	Programmer Programmer
	// Capabilities advertised northbound (default compute+forwarding).
	Capabilities []domain.Capability
}

// NewLocalOrchestrator builds the leaf layer.
func NewLocalOrchestrator(cfg LocalConfig) (*LocalOrchestrator, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("core: local orchestrator needs an ID")
	}
	if cfg.Substrate == nil {
		return nil, fmt.Errorf("core: local orchestrator %s needs a substrate", cfg.ID)
	}
	if err := cfg.Substrate.Validate(); err != nil {
		return nil, fmt.Errorf("core: substrate of %s: %w", cfg.ID, err)
	}
	if cfg.Virtualizer == nil {
		cfg.Virtualizer = SingleBiSBiS{NodeID: nffg.ID("bisbis@" + cfg.ID)}
	}
	if cfg.Mapper == nil {
		cfg.Mapper = embed.NewDefault()
	}
	if cfg.Programmer == nil {
		cfg.Programmer = ProgrammerFunc(func(context.Context, *nffg.Delta, *nffg.NFFG) error { return nil })
	}
	if cfg.Capabilities == nil {
		cfg.Capabilities = []domain.Capability{domain.CapCompute, domain.CapForwarding}
	}
	return &LocalOrchestrator{
		id:       cfg.ID,
		virt:     cfg.Virtualizer,
		mapper:   cfg.Mapper,
		prog:     cfg.Programmer,
		caps:     cfg.Capabilities,
		cfg:      cfg.Substrate.Copy().Seal(),
		services: map[string]*embed.Mapping{},
		pending:  map[string]bool{},
	}, nil
}

// ID implements unify.Layer.
func (lo *LocalOrchestrator) ID() string { return lo.id }

// Capabilities implements domain.Domain.
func (lo *LocalOrchestrator) Capabilities() []domain.Capability {
	return append([]domain.Capability(nil), lo.caps...)
}

// snapshot returns the current immutable (cfg, gen) pair.
func (lo *LocalOrchestrator) snapshot() (*nffg.NFFG, uint64) {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	return lo.cfg, lo.gen
}

// View implements unify.Layer: the domain's exported virtualization, derived
// from an immutable snapshot without holding the lock. The output is memoized
// per substrate generation — between commits repeated views share one sealed
// graph (readers Copy() before mutating, per the unify.Layer contract).
func (lo *LocalOrchestrator) View(ctx context.Context) (*nffg.NFFG, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap, gen := lo.snapshot()
	if e := lo.viewCache.Load(); e != nil && e.gen == gen {
		lo.viewStats.hits.Add(1)
		return e.view, nil
	}
	lo.viewStats.misses.Add(1)
	v, err := lo.virt.View(snap)
	if err != nil {
		return nil, err
	}
	v.Seal()
	if old := lo.viewCache.Load(); old != nil {
		lo.viewStats.invalidations.Add(1)
	}
	lo.viewCache.Store(&loViewEntry{gen: gen, view: v})
	return v, nil
}

// ViewCacheStats returns the view memoization counters.
func (lo *LocalOrchestrator) ViewCacheStats() CacheStats { return lo.viewStats.snapshot() }

// Southbound returns the recorder the domain's Programmer records
// device-programming counters into.
func (lo *LocalOrchestrator) Southbound() *SouthboundRecorder { return &lo.southbound }

// SouthboundStats implements SouthboundStatsProvider.
func (lo *LocalOrchestrator) SouthboundStats() SouthboundStats { return lo.southbound.Snapshot() }

// Internal returns a copy of the internal configured substrate (inspection
// and tests).
func (lo *LocalOrchestrator) Internal() *nffg.NFFG {
	snap, _ := lo.snapshot()
	return snap.Copy()
}

// plan embeds a request against an immutable substrate snapshot and derives
// the new configuration plus the device delta. No locks held.
func (lo *LocalOrchestrator) plan(snap *nffg.NFFG, req *nffg.NFFG) (*embed.Mapping, *nffg.NFFG, *nffg.Delta, error) {
	work := req.Copy()
	scope := map[nffg.ID][]nffg.ID{}
	for _, id := range work.NFIDs() {
		nf := work.NFs[id]
		if nf.Host == "" {
			continue
		}
		if _, direct := snap.Infras[nf.Host]; direct {
			continue
		}
		expanded := lo.virt.Scope(snap, nf.Host)
		if len(expanded) == 0 {
			return nil, nil, nil, fmt.Errorf("%w: NF %s pinned to unknown view node %s", unify.ErrRejected, id, nf.Host)
		}
		if len(expanded) == 1 {
			nf.Host = expanded[0]
		} else {
			nf.Host = ""
			scope[id] = expanded
		}
	}
	mapping, err := lo.mapper.MapScoped(snap, work, scope)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	newCfg, err := embed.Apply(snap, mapping)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: %v", unify.ErrRejected, err)
	}
	delta, err := nffg.Diff(snap, newCfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core %s: diff: %w", lo.id, err)
	}
	return mapping, newCfg, delta, nil
}

// Install implements unify.Layer: embed the request on a substrate snapshot
// (outside the lock), then commit — re-validating the generation, programming
// the devices, and recording the service in one critical section. Losing the
// commit race re-plans on a fresh snapshot, bounded by MaxMapAttempts.
func (lo *LocalOrchestrator) Install(ctx context.Context, req *nffg.NFFG) (*unify.Receipt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.ID == "" {
		return nil, fmt.Errorf("%w: request needs an ID", unify.ErrRejected)
	}
	lo.mu.Lock()
	if lo.services[req.ID] != nil || lo.pending[req.ID] {
		lo.mu.Unlock()
		return nil, fmt.Errorf("%w: service %s already installed", unify.ErrRejected, req.ID)
	}
	lo.pending[req.ID] = true
	lo.mu.Unlock()
	release := func() {
		lo.mu.Lock()
		delete(lo.pending, req.ID)
		lo.mu.Unlock()
	}

	var lastErr error
	for attempt := 0; attempt < MaxMapAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			release()
			return nil, err
		}
		snap, snapGen := lo.snapshot()
		mapping, newCfg, delta, err := lo.plan(snap, req)
		if err != nil {
			if _, gen := lo.snapshot(); gen != snapGen {
				lastErr = err
				continue // stale failure: the substrate moved, re-plan
			}
			release()
			return nil, err
		}
		lo.mu.Lock()
		if lo.gen != snapGen {
			lo.mu.Unlock()
			lastErr = fmt.Errorf("%w: substrate generation advanced during mapping", unify.ErrBusy)
			continue // lost the commit race, re-plan on the fresh snapshot
		}
		// The programming span scopes the device-side work; the adapter's
		// per-datapath flush spans nest under it via pctx.
		progSpan, pctx := obs.StartSpan(ctx, "local.program", "domain", lo.id)
		if err := lo.prog.Commit(pctx, delta, newCfg); err != nil {
			progSpan.EndWith(err)
			delete(lo.pending, req.ID)
			lo.mu.Unlock()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Keep the context error identity: the caller canceled, the
				// request was not rejected on its merits.
				return nil, fmt.Errorf("core %s: programming canceled: %w", lo.id, err)
			}
			return nil, fmt.Errorf("%w: programming failed: %v", unify.ErrRejected, err)
		}
		progSpan.End()
		lo.cfg = newCfg.Seal()
		lo.gen++
		lo.services[req.ID] = mapping
		delete(lo.pending, req.ID)
		lo.mu.Unlock()
		lo.watch.wake()

		return mappingReceipt(req.ID, mapping), nil
	}
	release()
	return nil, fmt.Errorf("%w: gave up after %d mapping attempts (last: %v)", unify.ErrBusy, MaxMapAttempts, lastErr)
}

// Remove implements unify.Layer.
func (lo *LocalOrchestrator) Remove(ctx context.Context, serviceID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	mapping, ok := lo.services[serviceID]
	if !ok {
		return fmt.Errorf("%w: %s", unify.ErrUnknownService, serviceID)
	}
	newCfg := lo.cfg.Copy()
	if err := embed.Release(newCfg, mapping); err != nil {
		return err
	}
	delta, err := nffg.Diff(lo.cfg, newCfg)
	if err != nil {
		return err
	}
	if err := lo.prog.Commit(ctx, delta, newCfg); err != nil {
		return fmt.Errorf("core %s: programming teardown: %w", lo.id, err)
	}
	lo.cfg = newCfg.Seal()
	lo.gen++
	lo.watch.wake()
	delete(lo.services, serviceID)
	return nil
}

// Services implements unify.Layer.
func (lo *LocalOrchestrator) Services() []string {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	out := make([]string, 0, len(lo.services))
	for id := range lo.services {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Package core implements the paper's primary contribution: the joint cloud
// and network resource virtualization and programming API.
//
// A Virtualizer computes the virtualization view (interconnected BiS-BiS
// nodes) a layer presents to its manager; the ResourceOrchestrator is the
// manager-side component that maps configurations expressed on a view onto
// the underlying resources. Because the orchestrator itself exposes the same
// Layer interface northbound that it consumes southbound, UNIFY domains stack
// into a multi-level control hierarchy — the recursive Unify interface.
package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/unify-repro/escape/internal/nffg"
)

// Virtualizer computes a client view from the domain-of-views (DoV) and can
// expand view nodes back to the concrete nodes they aggregate.
type Virtualizer interface {
	// Name identifies the virtualization policy.
	Name() string
	// View derives the client view from the global resource view.
	View(dov *nffg.NFFG) (*nffg.NFFG, error)
	// Scope expands a view node to the underlying DoV nodes it stands for.
	// nil means the node is unknown to this virtualizer.
	Scope(dov *nffg.NFFG, viewNode nffg.ID) []nffg.ID
}

// ErrEmptyView is returned when a view would contain no resources.
var ErrEmptyView = errors.New("core: empty view")

// --- Transparent -------------------------------------------------------------

// Transparent exposes the DoV one-to-one (full topology view): the client
// sees and controls every BiS-BiS directly.
type Transparent struct{}

// Name implements Virtualizer.
func (Transparent) Name() string { return "transparent" }

// View implements Virtualizer.
func (Transparent) View(dov *nffg.NFFG) (*nffg.NFFG, error) {
	if len(dov.Infras) == 0 {
		return nil, ErrEmptyView
	}
	v := dov.Copy()
	v.ID = dov.ID + "/view"
	return v, nil
}

// Scope implements Virtualizer: every view node is exactly one DoV node.
func (Transparent) Scope(dov *nffg.NFFG, viewNode nffg.ID) []nffg.ID {
	if _, ok := dov.Infras[viewNode]; ok {
		return []nffg.ID{viewNode}
	}
	return nil
}

// --- SingleBiSBiS ------------------------------------------------------------

// SingleBiSBiS collapses the whole DoV into one Big Switch with Big Software:
// aggregate compute capacity, the union of supported NF types, and one port
// per SAP. A client of this view delegates all placement and routing — the
// paper's "if a service orchestrator sees only a single BiS-BiS node then its
// orchestration task is trivial".
type SingleBiSBiS struct {
	// NodeID names the aggregate node (default "bisbis0").
	NodeID nffg.ID
}

// Name implements Virtualizer.
func (s SingleBiSBiS) Name() string { return "single-bisbis" }

func (s SingleBiSBiS) nodeID() nffg.ID {
	if s.NodeID != "" {
		return s.NodeID
	}
	return "bisbis0"
}

// View implements Virtualizer.
func (s SingleBiSBiS) View(dov *nffg.NFFG) (*nffg.NFFG, error) {
	if len(dov.Infras) == 0 {
		return nil, ErrEmptyView
	}
	v := nffg.New(dov.ID + "/view")
	v.Version = dov.Version
	agg := &nffg.Infra{ID: s.nodeID(), Type: "bisbis"}
	supported := map[string]bool{}
	domains := map[string]bool{}
	for _, id := range dov.InfraIDs() {
		infra := dov.Infras[id]
		avail, err := dov.AvailableResources(id)
		if err != nil {
			return nil, err
		}
		agg.Capacity = agg.Capacity.Add(avail)
		domains[infra.Domain] = true
		for _, t := range infra.Supported {
			supported[t] = true
		}
	}
	// The aggregate inherits the domain when it is uniform, so a parent
	// grouping by domain still distinguishes sibling layers.
	if len(domains) == 1 {
		for d := range domains {
			agg.Domain = d
		}
	} else {
		agg.Domain = string(s.nodeID())
	}
	for t := range supported {
		agg.Supported = append(agg.Supported, t)
	}
	sort.Strings(agg.Supported)
	if err := v.AddInfra(agg); err != nil {
		return nil, err
	}
	// One port + virtual uplink per SAP, inheriting the SAP's attachment
	// capacity (min along its DoV uplink) so the client's admission control
	// remains meaningful.
	for i, sapID := range dov.SAPIDs() {
		port := fmt.Sprint(i + 1)
		agg.Ports = append(agg.Ports, &nffg.Port{ID: port, SAP: sapID})
		if err := v.AddSAP(&nffg.SAP{ID: sapID, Port: &nffg.Port{ID: "1"}}); err != nil {
			return nil, err
		}
		bw, delay := sapUplink(dov, sapID)
		if err := v.AddDuplexLink(fmt.Sprintf("v-%s", sapID), sapID, "1", agg.ID, port, bw, delay); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Scope implements Virtualizer: the aggregate expands to every DoV infra.
func (s SingleBiSBiS) Scope(dov *nffg.NFFG, viewNode nffg.ID) []nffg.ID {
	if viewNode != s.nodeID() {
		return nil
	}
	return dov.InfraIDs()
}

// --- DomainBiSBiS ------------------------------------------------------------

// DomainBiSBiS aggregates each infrastructure domain into one BiS-BiS node
// and preserves inter-domain connectivity: the view the multi-domain
// orchestrator in Fig. 1 works on.
type DomainBiSBiS struct{}

// Name implements Virtualizer.
func (DomainBiSBiS) Name() string { return "domain-bisbis" }

// viewNodeID derives the aggregate node ID for a domain.
func domainNodeID(domain string) nffg.ID { return nffg.ID("bisbis@" + domain) }

// View implements Virtualizer.
func (DomainBiSBiS) View(dov *nffg.NFFG) (*nffg.NFFG, error) {
	if len(dov.Infras) == 0 {
		return nil, ErrEmptyView
	}
	v := nffg.New(dov.ID + "/view")
	v.Version = dov.Version
	domains := map[string]*nffg.Infra{}
	domainOf := map[nffg.ID]string{}
	supported := map[string]map[string]bool{}
	for _, id := range dov.InfraIDs() {
		infra := dov.Infras[id]
		domainOf[id] = infra.Domain
		agg, ok := domains[infra.Domain]
		if !ok {
			agg = &nffg.Infra{ID: domainNodeID(infra.Domain), Type: "bisbis", Domain: infra.Domain}
			domains[infra.Domain] = agg
			supported[infra.Domain] = map[string]bool{}
		}
		avail, err := dov.AvailableResources(id)
		if err != nil {
			return nil, err
		}
		agg.Capacity = agg.Capacity.Add(avail)
		for _, t := range infra.Supported {
			supported[infra.Domain][t] = true
		}
	}
	var domainNames []string
	for d := range domains {
		domainNames = append(domainNames, d)
	}
	sort.Strings(domainNames)
	for _, d := range domainNames {
		for t := range supported[d] {
			domains[d].Supported = append(domains[d].Supported, t)
		}
		sort.Strings(domains[d].Supported)
		if err := v.AddInfra(domains[d]); err != nil {
			return nil, err
		}
	}
	// Ports and links: SAP uplinks and inter-domain links survive; intra-
	// domain links collapse away. Port numbers are allocated per aggregate.
	nextPort := map[nffg.ID]int{}
	port := func(n nffg.ID, sap nffg.ID) string {
		nextPort[n]++
		p := fmt.Sprint(nextPort[n])
		v.Infras[n].Ports = append(v.Infras[n].Ports, &nffg.Port{ID: p, SAP: sap})
		return p
	}
	seenSAP := map[nffg.ID]bool{}
	for _, l := range dov.Links {
		srcDom, srcInfra := domainOf[l.SrcNode]
		dstDom, dstInfra := domainOf[l.DstNode]
		_, srcSAP := dov.SAPs[l.SrcNode]
		switch {
		case srcInfra && dstInfra && srcDom != dstDom:
			// Inter-domain link: keep (directed; pair handled when its
			// reverse shows up, so add as one directed link).
			a, b := domainNodeID(srcDom), domainNodeID(dstDom)
			if err := v.AddLink(&nffg.Link{
				ID: l.ID, SrcNode: a, SrcPort: port(a, ""), DstNode: b, DstPort: port(b, ""),
				Bandwidth: l.Bandwidth, Delay: l.Delay, Backhaul: true,
			}); err != nil {
				return nil, err
			}
		case srcSAP && dstInfra:
			// One virtual uplink per (SAP, domain) pair: border SAPs keep an
			// uplink into every domain they stitch.
			key := nffg.ID(string(l.SrcNode) + "@" + dstDom)
			if seenSAP[key] {
				continue // duplex pair collapses
			}
			seenSAP[key] = true
			if _, ok := v.SAPs[l.SrcNode]; !ok {
				if err := v.AddSAP(&nffg.SAP{ID: l.SrcNode, Port: &nffg.Port{ID: "1"}}); err != nil {
					return nil, err
				}
			}
			n := domainNodeID(dstDom)
			if err := v.AddDuplexLink(fmt.Sprintf("v-%s@%s", l.SrcNode, dstDom), l.SrcNode, "1", n, port(n, l.SrcNode), l.Bandwidth, l.Delay); err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// Scope implements Virtualizer: a domain aggregate expands to that domain's
// DoV nodes.
func (DomainBiSBiS) Scope(dov *nffg.NFFG, viewNode nffg.ID) []nffg.ID {
	var out []nffg.ID
	for _, id := range dov.InfraIDs() {
		if domainNodeID(dov.Infras[id].Domain) == viewNode {
			out = append(out, id)
		}
	}
	return out
}

// sapUplink finds the bandwidth/delay of a SAP's attachment in the DoV.
func sapUplink(dov *nffg.NFFG, sap nffg.ID) (bw, delay float64) {
	for _, l := range dov.Links {
		if l.SrcNode == sap || l.DstNode == sap {
			return l.Bandwidth, l.Delay
		}
	}
	return 0, 0
}

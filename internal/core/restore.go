// Crash recovery of the resource orchestrator: restoring shard graphs, the
// service table, and identifier reservations from journal state, re-attaching
// child domains without re-merging their views, and producing the shard
// snapshots the journal's checkpointer persists.
//
// See ARCHITECTURE.md, "Durability", for the full recovery sequence and the
// ordering contracts the functions here rely on.
package core

import (
	"context"
	"fmt"
	"log"
	"slices"
	"sort"

	"github.com/unify-repro/escape/internal/domain"
	"github.com/unify-repro/escape/internal/journal"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// Journal is the write-ahead hook the orchestrator calls on its commit paths
// (implemented by *journal.Store). Attach/commit/release appends happen with
// the target shard's lock held, so implementations must never block on
// orchestrator state; deployed records are appended lock-free after the
// service table update.
type Journal interface {
	LogAttach(shard string, gen, epoch uint64, child, dovID string, view *nffg.NFFG) error
	LogCommit(shard string, gen, epoch uint64, svcs []journal.ServiceCommit) error
	LogRelease(shard string, gen, epoch uint64, serviceIDs []string) error
	LogDeployed(shard string, epoch uint64, rec journal.DeployedRecord) error
	LogDetach(shard string, gen, epoch uint64, child string, drop bool, serviceIDs []string) error
}

// journalCommitLocked appends one commit record to every touched shard's log
// while the shard locks are held: each record lists the services whose
// mappings the shard's generation bump committed, duplicated per shard so
// every log replays self-contained.
func (bc *batchRun) journalCommitLocked(tshs []*shard, epoch uint64, idx []int, plans map[int]*plannedReq) {
	ro := bc.ro
	for _, s := range tshs {
		var svcs []journal.ServiceCommit
		for _, i := range idx {
			p, ok := plans[i]
			if !ok || !bc.live[i] {
				continue
			}
			if !slices.Contains(p.touched, s.key) {
				continue
			}
			svcs = append(svcs, journal.ServiceCommit{
				ServiceID: bc.reqs[i].ID,
				Mapping:   p.mapping,
				Touched:   p.touched,
				Home:      p.home,
			})
		}
		if len(svcs) == 0 {
			continue
		}
		if err := ro.journal.LogCommit(s.key, s.gen, epoch, svcs); err != nil {
			ro.stats.journalErrs.Add(1)
			log.Printf("core %s: journal commit on %s: %v", ro.id, s.key, err)
		} else {
			s.journalRecs++
		}
	}
}

// Restore loads recovered journal state into a freshly constructed
// orchestrator: shard graphs with their generations, the service table with
// receipts and identifier reservations, the child-domain ownership map, and
// the commit epoch. It must run before any Attach or Install; restoring onto
// an orchestrator that already has state is an error.
//
// Restored children are present in the DoV but not yet reachable — call
// Reattach (not Attach: the view is already merged) for each before serving
// installs or removals.
func (ro *ResourceOrchestrator) Restore(state *journal.RecoveredState) error {
	if state == nil || state.Empty() {
		return nil
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if len(ro.dir.keys) != 0 || len(ro.services) != 0 {
		return fmt.Errorf("core: Restore on a non-empty orchestrator")
	}

	dir := newShardDirectory()
	owner := map[nffg.ID]string{}
	for _, rs := range state.Shards {
		g := rs.Graph
		if g == nil {
			g = nffg.New(ro.id + "-dov")
		}
		sh := &shard{
			key:         rs.Key,
			dov:         g.Seal(),
			gen:         rs.Gen,
			commits:     rs.Gen, // preserve the Gen == Commits invariant
			restoredGen: rs.Gen,
		}
		dir.shards[rs.Key] = sh
		dir.keys = append(dir.keys, rs.Key)
		children := make([]string, 0, len(rs.ChildInfras))
		for child, infras := range rs.ChildInfras {
			dir.childShard[child] = rs.Key
			children = append(children, child)
			for _, inf := range infras {
				owner[inf] = child
			}
		}
		sort.Strings(children)
		dir.domains[rs.Key] = children
	}
	sort.Strings(dir.keys)

	for _, sc := range state.Services {
		if sc.Mapping == nil {
			continue
		}
		rec := &serviceRecord{
			state:    stateReady,
			mapping:  sc.Mapping,
			children: map[string][]string{},
			receipt:  sc.Receipt,
			shards:   sc.Touched,
		}
		for child, subs := range sc.Children {
			rec.children[child] = append([]string(nil), subs...)
		}
		if rec.receipt == nil {
			// Crash landed between commit and southbound completion: the
			// resources are held and the children may be partially
			// programmed. Surface the mapping-level receipt; Remove tears
			// down whatever the children actually hold.
			rec.receipt = mappingReceipt(sc.ServiceID, sc.Mapping)
		}
		if req := sc.Mapping.Request; req != nil {
			for _, nf := range req.NFIDs() {
				ro.nfOwner[nf] = sc.ServiceID
				rec.resNFs = append(rec.resNFs, nf)
			}
			for _, h := range req.Hops {
				ro.hopOwner[h.ID] = sc.ServiceID
				rec.resHops = append(rec.resHops, h.ID)
			}
		}
		ro.services[sc.ServiceID] = rec
	}

	ro.dir = dir
	ro.owner = owner
	ro.epoch.Store(state.Epoch)
	for key, gen := range state.Detached {
		// Keep dropped shards' generation floors so a post-restart re-attach
		// of the same key stays gen-monotone in its journal log.
		if ro.lastGen[key] < gen {
			ro.lastGen[key] = gen
		}
	}

	// Rebuild the reverse shard index from the recovered graphs, exactly as
	// attach-time registration would have.
	contrib := make(map[string]shardContrib, len(dir.keys))
	for _, key := range dir.keys {
		sh := dir.shards[key]
		contrib[key] = shardContrib{gen: sh.gen, nodes: ro.shardContribution(sh.dov)}
	}
	ro.contrib = contrib
	ro.rebuildIndexLocked()
	return nil
}

// ServiceReceipts maps every installed service to its receipt — the
// reconciliation input for admission.BuildResumePlans: a recovered job whose
// service already has a receipt here committed before the crash and must not
// be re-installed.
func (ro *ResourceOrchestrator) ServiceReceipts() map[string]*unify.Receipt {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	out := make(map[string]*unify.Receipt, len(ro.services))
	for id, rec := range ro.services {
		if rec.receipt != nil {
			out[id] = rec.receipt
		}
	}
	return out
}

// Reattach registers a child domain whose exported view is already part of
// the recovered DoV: unlike Attach it must NOT re-merge the view — the
// recovered shard graphs already contain it plus every committed allocation,
// so a second merge would double-count resources. It verifies the child is
// reachable and warns (only) when the child's infra set drifted from the
// recovered one. Children unknown to the recovered state fall through to a
// normal Attach.
func (ro *ResourceOrchestrator) Reattach(ctx context.Context, d domain.Domain) error {
	ro.mu.Lock()
	_, known := ro.dir.childShard[d.ID()]
	ro.mu.Unlock()
	if !known {
		return ro.Attach(ctx, d)
	}
	if err := ro.reg.Register(d); err != nil {
		return err
	}
	view, err := ro.fetchChildView(ctx, d)
	if err != nil {
		_ = ro.reg.Deregister(d.ID())
		return fmt.Errorf("core: reattach %s: %w", d.ID(), err)
	}
	// Drift check: the child's current infra set vs what the journal says it
	// exported. A drifted child still reattaches — its committed services
	// must stay removable — but the operator is told.
	recovered := map[nffg.ID]bool{}
	ro.mu.Lock()
	for inf, child := range ro.owner {
		if child == d.ID() {
			recovered[inf] = true
		}
	}
	ro.mu.Unlock()
	for _, inf := range view.InfraIDs() {
		qualified := inf // infra IDs are not qualified at attach; links are
		if !recovered[qualified] {
			log.Printf("core %s: reattach %s: infra %s not in recovered view (domain drifted since the journal was written)", ro.id, d.ID(), inf)
		}
	}
	return nil
}

// ShardSnapshots produces the checkpoint source for
// journal.(*Store).StartCheckpoints: every shard's sealed graph + generation,
// the child domains exporting into it, and the services homed on it.
//
// Ordering contract with the commit path: shard graphs are read FIRST (each
// under its shard lock), the service table SECOND. The commit path updates
// the table before releasing the shard locks, so any graph state that
// contains a commit is guaranteed to find that commit's mapping in the table
// — the checkpoint can overshoot the table (a service whose resources are
// not yet in the captured graph; its commit record replays on top) but never
// undershoot it (resources in the graph with no owning service).
func (ro *ResourceOrchestrator) ShardSnapshots() []journal.ShardSnapshot {
	dir, owner := ro.snapshotDir()

	type cut struct {
		graph *nffg.NFFG
		gen   uint64
	}
	cuts := make(map[string]cut, len(dir.keys))
	for _, key := range dir.keys {
		sh := dir.shards[key]
		sh.mu.Lock()
		cuts[key] = cut{graph: sh.dov, gen: sh.gen}
		sh.mu.Unlock()
	}
	epoch := ro.epoch.Load()

	svcByShard := map[string][]journal.ServiceCheckpoint{}
	ro.mu.Lock()
	ids := make([]string, 0, len(ro.services))
	for id := range ro.services {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := ro.services[id]
		// A record without a mapping has not committed yet — its commit
		// record (if any lands) replays from the WAL. Removing services are
		// kept: if the release never commits before a crash, the resources
		// are still held and the service must stay removable.
		if rec.mapping == nil || len(rec.shards) == 0 {
			continue
		}
		children := make(map[string][]string, len(rec.children))
		for c, subs := range rec.children {
			children[c] = append([]string(nil), subs...)
		}
		home := rec.shards[0]
		svcByShard[home] = append(svcByShard[home], journal.ServiceCheckpoint{
			ServiceID: id,
			Mapping:   rec.mapping,
			Touched:   rec.shards,
			Home:      home,
			Children:  children,
			Receipt:   rec.receipt,
			Deployed:  rec.state == stateReady,
		})
	}
	ro.mu.Unlock()

	childInfras := map[string]map[string][]nffg.ID{}
	for inf, child := range owner {
		key, ok := dir.childShard[child]
		if !ok {
			continue
		}
		m := childInfras[key]
		if m == nil {
			m = map[string][]nffg.ID{}
			childInfras[key] = m
		}
		m[child] = append(m[child], inf)
	}
	for _, m := range childInfras {
		for _, infras := range m {
			slices.Sort(infras)
		}
	}

	snaps := make([]journal.ShardSnapshot, 0, len(dir.keys))
	for _, key := range dir.keys {
		c := cuts[key]
		snaps = append(snaps, journal.ShardSnapshot{
			Key:         key,
			Gen:         c.gen,
			Epoch:       epoch,
			Graph:       c.graph,
			ChildInfras: childInfras[key],
			Services:    svcByShard[key],
		})
	}
	return snaps
}

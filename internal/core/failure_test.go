package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/unify"
)

// flakyProgrammer fails the first n commits, then succeeds.
type flakyProgrammer struct {
	failures atomic.Int32
	commits  atomic.Int32
}

func (p *flakyProgrammer) Commit(context.Context, *nffg.Delta, *nffg.NFFG) error {
	p.commits.Add(1)
	if p.failures.Load() > 0 {
		p.failures.Add(-1)
		return errors.New("transient device failure")
	}
	return nil
}

func TestLocalOrchestratorRetryAfterTransientFailure(t *testing.T) {
	prog := &flakyProgrammer{}
	prog.failures.Store(1)
	lo := leafDomain(t, "fl", "sapA", "border", prog)
	req := chainReq(t, "svc", "sapA", "border", "fw")
	// First attempt fails; the orchestrator must stay clean.
	if _, err := lo.Install(context.Background(), req); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("first install: %v", err)
	}
	if len(lo.Services()) != 0 {
		t.Fatal("failed install recorded")
	}
	// Retry with the same request succeeds (idempotent state).
	if _, err := lo.Install(context.Background(), chainReq(t, "svc", "sapA", "border", "fw")); err != nil {
		t.Fatalf("retry should succeed: %v", err)
	}
	if len(lo.Services()) != 1 {
		t.Fatal("retry not recorded")
	}
}

// teardownFailingProgrammer accepts installs but fails deletions once.
type teardownFailingProgrammer struct {
	failDeletes atomic.Int32
}

func (p *teardownFailingProgrammer) Commit(_ context.Context, d *nffg.Delta, _ *nffg.NFFG) error {
	_, dn, _, dr := d.Counts()
	if (dn > 0 || dr > 0) && p.failDeletes.Load() > 0 {
		p.failDeletes.Add(-1)
		return errors.New("device unreachable during teardown")
	}
	return nil
}

func TestLocalOrchestratorTeardownFailureKeepsService(t *testing.T) {
	prog := &teardownFailingProgrammer{}
	prog.failDeletes.Store(1)
	lo := leafDomain(t, "td", "sapA", "border", prog)
	if _, err := lo.Install(context.Background(), chainReq(t, "svc", "sapA", "border", "fw")); err != nil {
		t.Fatal(err)
	}
	// Teardown fails: the service must remain tracked (retryable).
	if err := lo.Remove(context.Background(), "svc"); err == nil {
		t.Fatal("teardown should fail")
	}
	if len(lo.Services()) != 1 {
		t.Fatal("service must remain after failed teardown")
	}
	// Second attempt succeeds.
	if err := lo.Remove(context.Background(), "svc"); err != nil {
		t.Fatalf("retry teardown: %v", err)
	}
	if len(lo.Services()) != 0 {
		t.Fatal("service should be gone")
	}
}

func TestROPartialChildFailureMidChain(t *testing.T) {
	// Three leaves in a row; the middle one fails. The RO must roll back the
	// already-installed sub-services on the other children.
	progA, progC := &recordingProgrammer{}, &recordingProgrammer{}
	progB := &recordingProgrammer{failPfx: "svc"}
	mk := func(name string, prog Programmer, left, right nffg.ID) *LocalOrchestrator {
		sub := nffg.NewBuilder(name).
			BiSBiS(nffg.ID(name+"-n"), name, 4, res(8, 4096), "fw", "dpi", "nat").
			SAP(left).SAP(right).
			Link("l", left, "1", nffg.ID(name+"-n"), "1", 1000, 1).
			Link("r", nffg.ID(name+"-n"), "2", right, "1", 1000, 1).
			MustBuild()
		lo, err := NewLocalOrchestrator(LocalConfig{ID: name, Substrate: sub, Programmer: prog})
		if err != nil {
			t.Fatal(err)
		}
		return lo
	}
	loA := mk("A", progA, "sap1", "b1")
	loB := mk("B", progB, "b1", "b2")
	loC := mk("C", progC, "b2", "sap2")
	ro := NewResourceOrchestrator(Config{ID: "ro"})
	for _, d := range []*LocalOrchestrator{loA, loB, loC} {
		if err := ro.Attach(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	req := nffg.NewBuilder("svc").
		SAP("sap1").SAP("sap2").
		NF("svc-fw", "fw", 2, res(2, 512)).
		NF("svc-dpi", "dpi", 2, res(2, 512)).
		NF("svc-nat", "nat", 2, res(2, 512)).
		Chain("svc", 10, 0, "sap1", "svc-fw", "svc-dpi", "svc-nat", "sap2").
		MustBuild()
	req.NFs["svc-fw"].Host = "bisbis@A"
	req.NFs["svc-dpi"].Host = "bisbis@B" // lands on the failing child
	req.NFs["svc-nat"].Host = "bisbis@C"
	if _, err := ro.Install(context.Background(), req); !errors.Is(err, unify.ErrRejected) {
		t.Fatalf("install should fail: %v", err)
	}
	for _, lo := range []*LocalOrchestrator{loA, loB, loC} {
		if n := len(lo.Services()); n != 0 {
			t.Fatalf("child %s kept %d services after rollback", lo.ID(), n)
		}
	}
	if len(ro.Services()) != 0 {
		t.Fatal("RO must not track the failed service")
	}
	// Capacity fully restored everywhere.
	for _, lo := range []*LocalOrchestrator{loA, loC} {
		v, _ := lo.View(context.Background())
		for _, id := range v.InfraIDs() {
			if v.Infras[id].Capacity.CPU != 8 {
				t.Fatalf("capacity leak on %s: %g", lo.ID(), v.Infras[id].Capacity.CPU)
			}
		}
	}
}

func TestROManySequentialServices(t *testing.T) {
	// Churn test: repeated install/remove cycles must not leak resources or
	// state anywhere in the stack.
	ro, loA, loB := buildMdO(t, &recordingProgrammer{}, &recordingProgrammer{})
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("churn%02d", i)
		req := chainReq(t, id, "sap1", "sap2", "fw")
		if _, err := ro.Install(context.Background(), req); err != nil {
			t.Fatalf("cycle %d install: %v", i, err)
		}
		if err := ro.Remove(context.Background(), id); err != nil {
			t.Fatalf("cycle %d remove: %v", i, err)
		}
	}
	if len(ro.Services())+len(loA.Services())+len(loB.Services()) != 0 {
		t.Fatal("state leaked across churn")
	}
	dov := mustDoV(t, ro)
	if len(dov.NFs) != 0 {
		t.Fatalf("NFs leaked into DoV: %v", dov.NFIDs())
	}
	for _, id := range dov.InfraIDs() {
		if len(dov.Infras[id].Flowrules) != 0 {
			t.Fatalf("rules leaked on %s", id)
		}
	}
}

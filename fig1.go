package escape

import (
	"context"
	"fmt"

	"github.com/unify-repro/escape/internal/core"
	"github.com/unify-repro/escape/internal/dataplane"
	"github.com/unify-repro/escape/internal/decomp"
	"github.com/unify-repro/escape/internal/domain/emunet"
	"github.com/unify-repro/escape/internal/domain/mininet"
	"github.com/unify-repro/escape/internal/domain/openstack"
	"github.com/unify-repro/escape/internal/domain/sdnctl"
	"github.com/unify-repro/escape/internal/domain/un"
	"github.com/unify-repro/escape/internal/embed"
	"github.com/unify-repro/escape/internal/monitor"
	"github.com/unify-repro/escape/internal/nffg"
	"github.com/unify-repro/escape/internal/service"
)

// Fig1System is the paper's Figure 1 brought up in one process: the joint
// SFC control plane on top of four technology domains —
//
//	sap1 — [Mininet+Click] — [legacy SDN (POX)] — [OpenStack+ODL] — [UN] — sap2
//
// stitched at border SAPs, with a multi-domain resource orchestrator (MdO)
// over the domains' exported views and a service layer on top. All domains
// forward packets through one shared deterministic dataplane engine, so an
// end-to-end chain demonstrably steers real (simulated) traffic across every
// technology.
type Fig1System struct {
	Engine *dataplane.Engine

	Mininet   *mininet.Domain
	SDN       *sdnctl.Domain
	OpenStack *openstack.Domain
	UN        *un.Domain

	// MdO is the multi-domain resource orchestrator (Fig. 1's upper right).
	MdO *core.ResourceOrchestrator
	// Service is the service layer with its service orchestrator (upper left).
	Service *service.Orchestrator
}

// Fig1Options tunes the demo system.
type Fig1Options struct {
	// SwitchesPerNetDomain sizes the Mininet and SDN domains (default 2).
	SwitchesPerNetDomain int
	// AcceleratedUN enables the DPDK-style fast path (default true).
	AcceleratedUN bool
	// MdOVirtualizer is the MdO's northbound view policy (default
	// SingleBiSBiS — full delegation to the MdO, the demo configuration).
	MdOVirtualizer Virtualizer
	// DecompRules, when set, enables NF decomposition in the MdO's mapper.
	DecompRules *decomp.Rules
}

// NewFig1System builds and starts the whole demo stack.
func NewFig1System(opts Fig1Options) (*Fig1System, error) {
	if opts.SwitchesPerNetDomain <= 0 {
		opts.SwitchesPerNetDomain = 2
	}
	if opts.MdOVirtualizer == nil {
		opts.MdOVirtualizer = core.SingleBiSBiS{NodeID: "bisbis@mdo"}
	}
	eng := dataplane.NewEngine()
	sys := &Fig1System{Engine: eng}

	// --- Mininet domain: sap1 + border b-mn-sdn --------------------------
	mnSub, err := lineSubstrate("mn", "mininet", opts.SwitchesPerNetDomain,
		"sap1", "b-mn-sdn", []string{"firewall", "dpi", "nat", "monitor"},
		Resources{CPU: 8, Mem: 8192, Storage: 64})
	if err != nil {
		return nil, err
	}
	sys.Mininet, err = mininet.New(mininet.Config{
		ID: "mininet", Substrate: mnSub, Engine: eng,
		Borders: map[ID]bool{"b-mn-sdn": true},
	})
	if err != nil {
		return nil, fmt.Errorf("fig1: mininet: %w", err)
	}

	// --- Legacy SDN domain: transit between b-mn-sdn and b-sdn-os --------
	sdnSub, err := transitSubstrate("sdn", opts.SwitchesPerNetDomain, "b-mn-sdn", "b-sdn-os")
	if err != nil {
		return nil, err
	}
	sys.SDN, err = sdnctl.New(sdnctl.Config{
		ID: "sdn", Substrate: sdnSub, Engine: eng,
		Borders: map[ID]bool{"b-mn-sdn": true, "b-sdn-os": true},
	})
	if err != nil {
		return nil, fmt.Errorf("fig1: sdn: %w", err)
	}

	// --- OpenStack domain: compute between b-sdn-os and b-os-un ----------
	osSub := NewBuilder("os-sub").
		BiSBiS("os-compute1", "openstack", 4, Resources{CPU: 32, Mem: 65536, Storage: 1024},
			"firewall", "dpi", "nat", "cache", "compress", "encrypt", "lb").
		SAP("b-sdn-os").SAP("b-os-un").
		Link("b1", "b-sdn-os", "1", "os-compute1", "1", 1000, 0.5).
		Link("b2", "os-compute1", "2", "b-os-un", "1", 1000, 0.5).
		MustBuild()
	sys.OpenStack, err = openstack.New(openstack.Config{
		ID: "openstack", Substrate: osSub, Engine: eng,
		Borders: map[ID]bool{"b-sdn-os": true, "b-os-un": true},
	})
	if err != nil {
		return nil, fmt.Errorf("fig1: openstack: %w", err)
	}

	// --- Universal Node: between b-os-un and sap2 ------------------------
	unSub := NewBuilder("un-sub").
		BiSBiS("un-lsi0", "un", 4, Resources{CPU: 16, Mem: 16384, Storage: 256},
			"firewall", "dpi", "nat", "compress", "encrypt", "cache", "monitor", "lb").
		SAP("b-os-un").SAP("sap2").
		Link("b", "b-os-un", "1", "un-lsi0", "1", 10000, 0.05).
		Link("u", "un-lsi0", "2", "sap2", "1", 10000, 0.05).
		MustBuild()
	sys.UN, err = un.New(un.Config{
		ID: "un", Substrate: unSub, Engine: eng,
		Borders: map[ID]bool{"b-os-un": true}, Accelerated: opts.AcceleratedUN,
	})
	if err != nil {
		return nil, fmt.Errorf("fig1: un: %w", err)
	}

	// --- Physical inter-domain wires (what the border SAPs stand for) ----
	if err := emunet.Patch(sys.Mininet.Net(), "b-mn-sdn", sys.SDN.Net(), "b-mn-sdn", 1000, 1); err != nil {
		return nil, fmt.Errorf("fig1: patch mn-sdn: %w", err)
	}
	if err := emunet.Patch(sys.SDN.Net(), "b-sdn-os", sys.OpenStack.Cloud().Net(), "b-sdn-os", 1000, 1); err != nil {
		return nil, fmt.Errorf("fig1: patch sdn-os: %w", err)
	}
	if err := emunet.Patch(sys.OpenStack.Cloud().Net(), "b-os-un", sys.UN.Net(), "b-os-un", 1000, 0.5); err != nil {
		return nil, fmt.Errorf("fig1: patch os-un: %w", err)
	}

	// --- Control plane: MdO over the four domains, service layer on top --
	var mdoMapper *embed.Mapper
	if opts.DecompRules != nil {
		mdoMapper = embed.New(embed.Options{MaxBacktrack: 128, Decomp: opts.DecompRules})
	}
	sys.MdO = core.NewResourceOrchestrator(core.Config{ID: "mdo", Virtualizer: opts.MdOVirtualizer, Mapper: mdoMapper})
	if err := sys.MdO.Attach(context.Background(), sys.Mininet); err != nil {
		return nil, err
	}
	if err := sys.MdO.Attach(context.Background(), sys.SDN); err != nil {
		return nil, err
	}
	if err := sys.MdO.Attach(context.Background(), sys.OpenStack); err != nil {
		return nil, err
	}
	if err := sys.MdO.Attach(context.Background(), sys.UN); err != nil {
		return nil, err
	}
	sys.Service = service.NewOrchestrator(sys.MdO, nil)
	return sys, nil
}

// Close shuts down all control-plane sessions.
func (s *Fig1System) Close() {
	if s.Mininet != nil {
		s.Mininet.Close()
	}
	if s.SDN != nil {
		s.SDN.Close()
	}
	if s.OpenStack != nil {
		s.OpenStack.Close()
	}
}

// Snapshot aggregates operational counters from all four domains.
func (s *Fig1System) Snapshot() *monitor.Snapshot {
	return monitor.CollectAll(
		monitor.NetSource{Domain: "mininet", Net: s.Mininet.Net()},
		monitor.NetSource{Domain: "sdn", Net: s.SDN.Net()},
		monitor.NetSource{Domain: "openstack", Net: s.OpenStack.Cloud().Net()},
		monitor.NetSource{Domain: "un", Net: s.UN.Net()},
	)
}

// SAP1 returns the traffic host of the Mininet-side user SAP.
func (s *Fig1System) SAP1() (*dataplane.SAPHost, error) { return s.Mininet.Net().SAP("sap1") }

// SAP2 returns the traffic host of the UN-side user SAP.
func (s *Fig1System) SAP2() (*dataplane.SAPHost, error) { return s.UN.Net().SAP("sap2") }

// DemoChain returns the canonical demo request: sap1 -> firewall -> dpi ->
// compress -> sap2 with a bandwidth demand per hop, exercising three
// execution environments (Click process, VM, container).
func (s *Fig1System) DemoChain(id string, bw float64) (*NFFG, error) {
	fw := ID(id + "-fw")
	dpi := ID(id + "-dpi")
	comp := ID(id + "-comp")
	g, err := NewBuilder(id).
		SAP("sap1").SAP("sap2").
		NF(fw, "firewall", 2, Resources{CPU: 2, Mem: 1024, Storage: 2}).
		NF(dpi, "dpi", 2, Resources{CPU: 4, Mem: 4096, Storage: 8}).
		NF(comp, "compress", 2, Resources{CPU: 2, Mem: 2048, Storage: 4}).
		Chain(id, bw, 0, "sap1", fw, dpi, comp, "sap2").
		Build()
	if err != nil {
		return nil, err
	}
	// Steer each NF into its intended execution environment, as the demo
	// narrative does: Click in Mininet, VM in OpenStack, container on UN.
	g.NFs[fw].Host = "bisbis@mininet"
	g.NFs[dpi].Host = "bisbis@openstack"
	g.NFs[comp].Host = "bisbis@un"
	return g, nil
}

// lineSubstrate builds "sapLeft - s1 - s2 - ... - sn - sapRight" with compute
// switches.
func lineSubstrate(prefix, domain string, n int, left, right ID, supported []string, cap Resources) (*nffg.NFFG, error) {
	b := NewBuilder(prefix + "-sub")
	var nodes []ID
	for i := 1; i <= n; i++ {
		id := ID(fmt.Sprintf("%s-s%d", prefix, i))
		b.BiSBiS(id, domain, 4, cap, supported...)
		nodes = append(nodes, id)
	}
	b.SAP(left).SAP(right)
	b.Link(prefix+"-l0", left, "1", nodes[0], "1", 1000, 0.5)
	for i := 0; i < n-1; i++ {
		b.Link(fmt.Sprintf("%s-l%d", prefix, i+1), nodes[i], "2", nodes[i+1], "1", 1000, 0.5)
	}
	b.Link(fmt.Sprintf("%s-l%d", prefix, n), nodes[n-1], "2", right, "1", 1000, 0.5)
	return b.Build()
}

// transitSubstrate builds a forwarding-only line between two border SAPs.
func transitSubstrate(prefix string, n int, left, right ID) (*nffg.NFFG, error) {
	b := NewBuilder(prefix + "-sub")
	var nodes []ID
	for i := 1; i <= n; i++ {
		id := ID(fmt.Sprintf("%s-s%d", prefix, i))
		b.Switch(id, prefix, 4)
		nodes = append(nodes, id)
	}
	b.SAP(left).SAP(right)
	b.Link(prefix+"-l0", left, "1", nodes[0], "1", 1000, 0.5)
	for i := 0; i < n-1; i++ {
		b.Link(fmt.Sprintf("%s-l%d", prefix, i+1), nodes[i], "2", nodes[i+1], "1", 1000, 0.5)
	}
	b.Link(fmt.Sprintf("%s-l%d", prefix, n), nodes[n-1], "2", right, "1", 1000, 0.5)
	return b.Build()
}

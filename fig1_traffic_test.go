package escape

import (
	"context"
	"strings"
	"testing"
)

// TestFig1BidirectionalChains deploys forward and reverse chains between the
// same SAP pair concurrently: distinct destinations mean distinct ingress
// classifiers, so both coexist.
func TestFig1BidirectionalChains(t *testing.T) {
	sys := newSys(t)
	fwd := NewBuilder("fwd").
		SAP("sap1").SAP("sap2").
		NF("fwd-fw", "firewall", 2, Resources{CPU: 2, Mem: 1024, Storage: 2}).
		Chain("fwd", 20, 0, "sap1", "fwd-fw", "sap2").
		MustBuild()
	rev := NewBuilder("rev").
		SAP("sap1").SAP("sap2").
		NF("rev-nat", "nat", 2, Resources{CPU: 2, Mem: 1024, Storage: 2}).
		Chain("rev", 20, 0, "sap2", "rev-nat", "sap1").
		MustBuild()
	if _, err := sys.Service.Submit(context.Background(), fwd); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Service.Submit(context.Background(), rev); err != nil {
		t.Fatalf("reverse chain should coexist: %v", err)
	}
	sap1, _ := sys.SAP1()
	sap2, _ := sys.SAP2()
	sap1.Send("sap2", 500)
	sap2.Send("sap1", 500)
	sys.Engine.RunToIdle()
	if n := len(sap2.Received()); n != 1 {
		t.Fatalf("forward deliveries: %d", n)
	}
	if n := len(sap1.Received()); n != 1 {
		t.Fatalf("reverse deliveries: %d", n)
	}
	fTrace := strings.Join(sap2.Received()[0].Trace, ",")
	rTrace := strings.Join(sap1.Received()[0].Trace, ",")
	if !strings.Contains(fTrace, "fwd-fw") || strings.Contains(fTrace, "rev-nat") {
		t.Fatalf("forward trace wrong: %s", fTrace)
	}
	if !strings.Contains(rTrace, "rev-nat") || strings.Contains(rTrace, "fwd-fw") {
		t.Fatalf("reverse trace wrong: %s", rTrace)
	}
}

// TestFig1AmbiguousChainsRejected: two chains with the same (ingress SAP,
// destination SAP) pair have indistinguishable classifiers and must be
// rejected as a conflict, not silently merged.
func TestFig1AmbiguousChainsRejected(t *testing.T) {
	sys := newSys(t)
	mk := func(id string) *NFFG {
		return NewBuilder(id).
			SAP("sap1").SAP("sap2").
			NF(ID(id+"-fw"), "firewall", 2, Resources{CPU: 1, Mem: 512, Storage: 1}).
			Chain(id, 5, 0, "sap1", ID(id+"-fw"), "sap2").
			MustBuild()
	}
	if _, err := sys.Service.Submit(context.Background(), mk("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Service.Submit(context.Background(), mk("second")); err == nil {
		t.Fatal("ambiguous second chain must be rejected")
	}
	// The failed install must not leave debris behind.
	if got := len(sys.MdO.Services()); got != 1 {
		t.Fatalf("services after rejection: %d", got)
	}
	if nfs := sys.Mininet.Net().RunningNFs(); len(nfs) != 1 {
		t.Fatalf("leaked NFs: %v", nfs)
	}
}

// TestFig1SnapshotAndHopHealth verifies the monitoring slice: after traffic,
// every hop of the deployed chain reports activity.
func TestFig1SnapshotAndHopHealth(t *testing.T) {
	sys := newSys(t)
	chain, err := sys.DemoChain("mon", 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Service.Submit(context.Background(), chain); err != nil {
		t.Fatal(err)
	}
	sap1, _ := sys.SAP1()
	for i := 0; i < 8; i++ {
		sap1.Send("sap2", 800)
	}
	sys.Engine.RunToIdle()
	snap := sys.Snapshot()
	if snap.TotalPackets() == 0 {
		t.Fatal("no rule activity recorded")
	}
	act := snap.HopActivity()
	for _, h := range chain.Hops {
		if act[h.ID] == 0 {
			t.Fatalf("hop %s saw no traffic: %v", h.ID, act)
		}
	}
	// NF processing counters present for all three NFs.
	if len(snap.NFs) != 3 {
		t.Fatalf("NF counters: %+v", snap.NFs)
	}
}

// TestFig1CapacityAccounting verifies bandwidth bookkeeping across
// install/remove cycles: after removal, the DoV matches its pristine state.
func TestFig1CapacityAccounting(t *testing.T) {
	sys := newSys(t)
	before, err := sys.MdO.DoV()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := sys.DemoChain("acct", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Service.Submit(context.Background(), chain); err != nil {
		t.Fatal(err)
	}
	during, err := sys.MdO.DoV()
	if err != nil {
		t.Fatal(err)
	}
	// Some link lost 100 Mbit/s while deployed.
	lost := false
	for _, l := range during.Links {
		if orig := before.LinkByID(l.ID); orig != nil && l.Bandwidth < orig.Bandwidth {
			lost = true
		}
	}
	if !lost {
		t.Fatal("no bandwidth reserved while deployed")
	}
	if err := sys.Service.Remove(context.Background(), "acct"); err != nil {
		t.Fatal(err)
	}
	after, err := sys.MdO.DoV()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range after.Links {
		orig := before.LinkByID(l.ID)
		if orig == nil {
			t.Fatalf("link %s appeared from nowhere", l.ID)
		}
		if l.Bandwidth != orig.Bandwidth {
			t.Fatalf("link %s bandwidth not restored: %g vs %g", l.ID, l.Bandwidth, orig.Bandwidth)
		}
	}
	if len(after.NFs) != 0 {
		t.Fatalf("NFs left in DoV: %v", after.NFIDs())
	}
}

// TestFig1TransparentMdOView runs the stack with a transparent MdO view: the
// service layer sees the per-domain aggregates and pre-maps placements
// itself (control instead of delegation).
func TestFig1TransparentMdOView(t *testing.T) {
	sys, err := NewFig1System(Fig1Options{MdOVirtualizer: DomainView})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	view, err := sys.Service.View(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Infras) != 4 {
		t.Fatalf("domain view should show 4 aggregates: %s", view.Summary())
	}
	g := NewBuilder("ctl").
		SAP("sap1").SAP("sap2").
		NF("ctl-nat", "nat", 2, Resources{CPU: 2, Mem: 1024, Storage: 2}).
		Chain("ctl", 10, 0, "sap1", "ctl-nat", "sap2").
		MustBuild()
	req, err := sys.Service.Submit(context.Background(), g)
	if err != nil {
		t.Fatalf("submit: %v (%s)", err, req.Error)
	}
	sap1, _ := sys.SAP1()
	sap2, _ := sys.SAP2()
	sap1.Send("sap2", 300)
	sys.Engine.RunToIdle()
	if len(sap2.Received()) != 1 {
		t.Fatal("traffic failed under transparent MdO view")
	}
}
